// serve_bench — closed-loop wall-clock load generator for the concurrent
// serving runtime (runtime::ChronoServer). K client threads hammer one
// server with a SEATS-style point-query mix and report throughput and
// p50/p99 latency per worker-pool size.
//
// Examples:
//   serve_bench --workers 4 --clients 16 --seconds 5
//   serve_bench --sweep 1,2,4,8 --clients 16 --seconds 5 --json BENCH_serve.json
//
// Socket modes (DESIGN.md §13) drive the same workload over the real TCP
// wire protocol instead of in-process Submit() calls:
//   serve_bench --wire --connections 1024 --pipeline 4 --seconds 5
//   serve_bench --wire --conn-sweep 64,256,1024 --json BENCH_serve.json
//   serve_bench --serve --port 7077 --seconds 30        # server only
//   serve_bench --connect 127.0.0.1:7077 --connections 256   # client only
// Open-loop arrivals (--arrival-qps R) draw Poisson inter-arrival gaps and
// measure latency from the *scheduled* send time, so a stalling server
// shows up as queueing delay instead of being hidden by coordinated
// omission.
//
// The remote database sits a (simulated) WAN away — --db-us is slept once
// per database round trip, outside every lock. That wait is what worker
// threads overlap: it is the paper's deployment premise (§6 places the
// middleware at the edge, far from the database) and it makes worker
// scaling meaningful even on small CPU-count machines.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "db/database.h"
#include "obs/audit.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/stats_server.h"
#include "obs/threads.h"
#include "runtime/server.h"
#include "wire/wire_client.h"
#include "wire/wire_server.h"
#include "workloads/seats.h"
#include "workloads/workload.h"

using namespace chrono;

namespace {

struct BenchOptions {
  std::vector<int> worker_counts = {4};
  int clients = 16;
  double seconds = 5.0;
  size_t shards = 16;
  size_t cache_mb = 64;
  uint64_t db_latency_us = 1000;
  int write_pct = 10;   // SEATS booking-style update share
  int hot_pct = 80;     // share of keys drawn from the hot set
  int hot_keys_pct = 10;  // hot-set size as % of the keyspace
  uint64_t seed = 1;
  int64_t customers = 2000;
  int64_t flights = 2000;
  int64_t payload_rows = 1;  // rows returned per point lookup
  std::string json_path;
  int stats_port = -1;       // -1 disables the HTTP stats endpoint
  std::string metrics_path;  // --metrics-out: JSON registry dump (last run)
  std::string journal_path;  // --journal-out: binary event journal (last run)
  std::string trace_path;    // --trace-out: final trace ring JSON (last run)
  bool journal = true;       // --no-journal: A/B the journal overhead
  bool telemetry = true;     // --no-telemetry: A/B tracing + time series
  bool lock_telemetry = true;  // --no-lock-telemetry: A/B the lock layer
  std::string profile_path;  // --profile-out: whole-run collapsed stacks
  int profile_hz = 99;       // --profile-hz: sampling rate for the above
  int chain_pct = 0;         // flight lookup -> flight_avail follow-up %
  bool progress = true;      // per-second qps/hit-rate/queue-depth line

  // Fault tolerance (DESIGN.md §11). Deadline/attempt-timeout defaults
  // activate only when a fault schedule is configured; -1 = auto.
  net::FaultOptions fault;
  int64_t deadline_ms = -1;         // per-request budget (auto: 100 under faults)
  int64_t attempt_timeout_ms = -1;  // per-attempt cap (auto: 25 under faults)
  uint64_t stale_serve_ms = 0;      // --stale-serve-ms degradation bound
  int retries = 3;                  // max demand-read attempts
  bool enable_retries = true;       // --no-retries

  // Overload control (DESIGN.md §17).
  uint64_t queue_target_ms = 0;     // --queue-target-ms: 0 = brownout off
  uint64_t brownout_sample_ms = 100;  // --brownout-sample-ms

  // Socket modes (DESIGN.md §13).
  bool wire = false;            // --wire: in-process WireServer + TCP clients
  bool serve = false;           // --serve: server only, wait out --seconds
  std::string connect;          // --connect host:port: client fleet only
  int port = 0;                 // --port for --serve (0 = ephemeral)
  std::vector<int> conn_counts;  // --connections N / --conn-sweep LIST
  int pipeline = 1;             // --pipeline D: per-conn in-flight window
  double arrival_qps = 0;       // --arrival-qps R: open-loop Poisson total
};

struct RunResult {
  int workers = 0;
  uint64_t ops = 0;
  double elapsed_s = 0;
  double throughput = 0;  // ops/s
  double p50_ms = 0;
  double p99_ms = 0;
  double mean_ms = 0;
  // Client-side demand accounting: a request "succeeds" when it returns a
  // result, fresh or explicitly stale.
  uint64_t reads_ok = 0;
  uint64_t reads_failed = 0;
  uint64_t writes_ok = 0;
  uint64_t writes_failed = 0;
  runtime::ServerMetrics metrics;

  double DemandSuccessRate() const {
    uint64_t total = reads_ok + reads_failed + writes_ok + writes_failed;
    return total == 0 ? 1.0
                      : static_cast<double>(reads_ok + writes_ok) /
                            static_cast<double>(total);
  }
  // Prefetch-efficacy scoreboard totals (zero when --no-journal).
  uint64_t prefetch_installed = 0;
  uint64_t prefetch_used = 0;
  uint64_t prefetch_wasted_bytes = 0;
  double prefetch_precision = 0;

  // Overload accounting (§17). Goodput counts only completions that came
  // back within the client's deadline — the number that matters under
  // overload, where raw qps can stay high while every response is late.
  uint64_t on_time = 0;
  double goodput = 0;              // on-time completions / s
  uint64_t expired_rejections = 0;    // kFlagExpired: never executed
  uint64_t overload_rejections = 0;   // brownout Retry-After refusals

  // Socket-mode extras (zero for in-process runs).
  bool socket_mode = false;
  int connections = 0;
  int pipeline = 0;
  double arrival_qps = 0;
  uint64_t wire_accepted = 0;
  uint64_t wire_protocol_errors = 0;
  uint64_t wire_requests = 0;
  double wire_p99_us = 0;
};

void Usage() {
  std::printf(
      "serve_bench — wall-clock load harness for the concurrent runtime\n\n"
      "  --workers N       server worker threads (default 4)\n"
      "  --sweep LIST      comma-separated worker counts, one run each\n"
      "  --clients K       closed-loop client threads (default 16)\n"
      "  --seconds S       measurement window per run (default 5)\n"
      "  --shards N        result-cache lock stripes (default 16)\n"
      "  --cache-mb N      result-cache budget (default 64)\n"
      "  --db-us N         simulated WAN+DB round trip in µs (default 1000)\n"
      "  --write-pct N     UPDATE share of the mix (default 10)\n"
      "  --hot-pct N       requests hitting the hot key set (default 80)\n"
      "  --customers N / --flights N   SEATS scale (default 2000/2000)\n"
      "  --payload-rows N  rows returned per point lookup (default 1) —\n"
      "                    widens every cached payload to stress the\n"
      "                    zero-copy hit path\n"
      "  --seed N          base RNG seed (default 1)\n"
      "  --chain-pct N     after a flight lookup, follow up with the\n"
      "                    matching flight_avail lookup N%% of the time —\n"
      "                    a learnable transition the predictor can mine\n"
      "                    (default 0)\n"
      "  --json FILE       write results as JSON\n"
      "  --stats-port N    serve /metrics, /metrics.json, /traces,\n"
      "                    /prefetch and /healthz on 127.0.0.1:N while\n"
      "                    running (0 = ephemeral port; off by default)\n"
      "  --metrics-out F   write a JSON metrics-registry snapshot to F\n"
      "                    after the run (last run when sweeping)\n"
      "  --journal-out F   persist the prefetch-efficacy event journal\n"
      "                    to F (binary; analyze with chrono_audit;\n"
      "                    last run when sweeping)\n"
      "  --trace-out F     dump the final request-trace ring to F as\n"
      "                    JSON (last run when sweeping)\n"
      "  --no-journal      disable the event journal (A/B its overhead)\n"
      "  --no-telemetry    disable tracing, tail reservoir and the\n"
      "                    time-series sampler (A/B their overhead)\n"
      "  --no-lock-telemetry  disarm the instrumented lock layer (A/B\n"
      "                    its overhead; /contention then reports armed\n"
      "                    false and records nothing)\n"
      "  --profile-out F   run the CPU sampling profiler for the whole\n"
      "                    measurement window and write collapsed stacks\n"
      "                    (flamegraph.pl-ready) to F (last run when\n"
      "                    sweeping)\n"
      "  --profile-hz N    sampling rate for --profile-out in Hz\n"
      "                    (1..1000, default 99)\n"
      "  --no-progress     suppress the per-second progress line\n"
      "\nfault tolerance (DESIGN.md §11; faults off by default):\n"
      "  --fault-error-pct X      fail X%% of backend calls\n"
      "  --fault-spike M          latency-spike multiplier (1 = off)\n"
      "  --fault-spike-pct X      %% of calls spiked (default 10)\n"
      "  --fault-blackout-ms N    total backend blackout for N ms\n"
      "  --fault-blackout-at-ms N blackout start offset (default 3000)\n"
      "  --fault-seed N           fault schedule seed (default 42)\n"
      "  --deadline-ms N          per-request budget (default 100 when\n"
      "                           faults are on, unlimited otherwise)\n"
      "  --attempt-timeout-ms N   per-attempt cap (default 25 under faults)\n"
      "  --retries N              max demand-read attempts (default 3)\n"
      "  --no-retries             disable demand-read retries\n"
      "  --stale-serve-ms N       serve cached-but-stale results up to N ms\n"
      "                           old when a demand fetch fails (default\n"
      "                           off)\n"
      "\noverload control (DESIGN.md §17; brownout off by default):\n"
      "  --queue-target-ms N      demand queue-wait p99 target for the\n"
      "                           adaptive brownout ladder (0 = off).\n"
      "                           Under pressure the server sheds prefetch,\n"
      "                           then pipelined frames, then rejects new\n"
      "                           Querys with a Retry-After hint\n"
      "  --brownout-sample-ms N   brownout sampler cadence (default 100)\n"
      "  In socket modes --deadline-ms also rides each Query frame, so the\n"
      "  server rejects requests that expired while queued without\n"
      "  executing them; reported goodput counts only on-time completions\n"
      "\nsocket modes (DESIGN.md §13; in-process by default):\n"
      "  --wire                   start a WireServer in-process and drive\n"
      "                           it with real TCP client connections\n"
      "  --connections N          socket connections (default: --clients)\n"
      "  --conn-sweep LIST        comma-separated connection counts, one\n"
      "                           run each (e.g. 64,256,1024)\n"
      "  --pipeline D             per-connection in-flight window\n"
      "                           (default 1 = strict request-response)\n"
      "  --arrival-qps R          open-loop mode: Poisson arrivals at R\n"
      "                           qps total across connections; latency\n"
      "                           measured from the scheduled send time\n"
      "                           (default 0 = closed loop)\n"
      "  --serve                  server only: listen for --seconds, then\n"
      "                           drain gracefully and verify the journal\n"
      "                           (recorded == drained)\n"
      "  --port N                 --serve listen port (default ephemeral)\n"
      "  --connect HOST:PORT      client fleet only, against a --serve\n"
      "                           node (no in-process database)\n");
}

// Strict flag-value parsers: reject malformed numbers with a clear message
// and exit 2 instead of silently reading atoi's 0.
int64_t IntFlag(const std::string& flag, const std::string& value) {
  int64_t out = 0;
  if (!ParseInt64(value, &out)) {
    std::fprintf(stderr, "invalid value for %s: '%s' (expected an integer)\n",
                 flag.c_str(), value.c_str());
    std::exit(2);
  }
  return out;
}

uint64_t UintFlag(const std::string& flag, const std::string& value) {
  uint64_t out = 0;
  if (!ParseUint64(value, &out)) {
    std::fprintf(stderr,
                 "invalid value for %s: '%s' (expected a non-negative "
                 "integer)\n",
                 flag.c_str(), value.c_str());
    std::exit(2);
  }
  return out;
}

double DoubleFlag(const std::string& flag, const std::string& value) {
  double out = 0;
  if (!ParseDouble(value, &out)) {
    std::fprintf(stderr, "invalid value for %s: '%s' (expected a number)\n",
                 flag.c_str(), value.c_str());
    std::exit(2);
  }
  return out;
}

int64_t PickKey(Rng* rng, const BenchOptions& opt, int64_t keyspace) {
  int64_t hot = std::max<int64_t>(1, keyspace * opt.hot_keys_pct / 100);
  if (rng->NextInt(0, 99) < opt.hot_pct) return rng->NextInt(0, hot - 1);
  return rng->NextInt(0, keyspace - 1);
}

/// One closed-loop client: issues SEATS-style point queries (the customer
/// / flight / availability / airline lookups the workload's transactions
/// are built from) plus a booking-style availability update.
std::string NextQuery(Rng* rng, const BenchOptions& opt) {
  int roll = static_cast<int>(rng->NextInt(0, 99));
  if (roll < opt.write_pct) {
    int64_t f = PickKey(rng, opt, opt.flights);
    return "UPDATE flight_avail SET fa_seats_left = fa_seats_left - 1 "
           "WHERE fa_f_id = " +
           std::to_string(f);
  }
  roll -= opt.write_pct;
  int reads_span = 100 - opt.write_pct;
  // Split the read share 40/30/20/10 across the four point lookups.
  if (roll < reads_span * 40 / 100) {
    int64_t c = PickKey(rng, opt, opt.customers);
    return "SELECT c_id, c_balance FROM customer WHERE c_id = " +
           std::to_string(c);
  }
  if (roll < reads_span * 70 / 100) {
    int64_t f = PickKey(rng, opt, opt.flights);
    return "SELECT f_id, f_al_id, f_depart_ap, f_arrive_ap FROM flight "
           "WHERE f_id = " +
           std::to_string(f);
  }
  if (roll < reads_span * 90 / 100) {
    int64_t f = PickKey(rng, opt, opt.flights);
    return "SELECT fa_seats_left FROM flight_avail WHERE fa_f_id = " +
           std::to_string(f);
  }
  int64_t al = PickKey(rng, opt, 50);
  return "SELECT al_name FROM airline WHERE al_id = " + std::to_string(al);
}

runtime::ServerConfig MakeServerConfig(const BenchOptions& opt, int workers,
                                       obs::MetricsRegistry* registry) {
  runtime::ServerConfig config;
  config.workers = workers;
  config.cache_shards = opt.shards;
  config.cache_bytes = opt.cache_mb << 20;
  config.db_latency_us = opt.db_latency_us;
  config.registry = registry;
  config.enable_journal = opt.journal;
  if (!opt.telemetry) {
    // A/B the whole timeline subsystem: no trace ring (which also
    // disables the tail reservoir) and no time-series sampler.
    config.trace_capacity = 0;
    config.timeseries_capacity = 0;
  }
  config.lock_telemetry = opt.lock_telemetry;
  config.fault = opt.fault;
  config.retry.max_attempts = opt.retries;
  config.enable_retries = opt.enable_retries;
  config.stale_serve_us = opt.stale_serve_ms * 1000;
  config.queue_target_us = opt.queue_target_ms * 1000;
  config.brownout_sample_ms = opt.brownout_sample_ms;
  const bool faults_on = net::FaultInjector(opt.fault).enabled();
  // A fault schedule without a deadline would let blackout calls hang for
  // the whole window; default to a bounded budget when faults are on.
  if (opt.deadline_ms >= 0) {
    config.request_deadline_us = static_cast<uint64_t>(opt.deadline_ms) * 1000;
  } else if (faults_on) {
    config.request_deadline_us = 100'000;
  }
  if (opt.attempt_timeout_ms >= 0) {
    config.attempt_timeout_us =
        static_cast<uint64_t>(opt.attempt_timeout_ms) * 1000;
  } else if (faults_on) {
    config.attempt_timeout_us = 25'000;
  }
  return config;
}

/// --profile-out: collapsed stacks captured over the whole measurement
/// window, ready for flamegraph.pl (or chrono_prof report).
void WriteProfile(const std::string& path, const obs::CpuProfiler& profiler) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::string collapsed = profiler.CollapsedStacks();
  std::fwrite(collapsed.data(), 1, collapsed.size(), f);
  std::fclose(f);
  std::printf(
      "wrote %s (%llu samples, %llu dropped)\n", path.c_str(),
      static_cast<unsigned long long>(profiler.samples_captured()),
      static_cast<unsigned long long>(profiler.samples_dropped()));
}

RunResult RunOnce(db::Database* db, const BenchOptions& opt, int workers) {
  // One registry per run so sweep runs export clean per-configuration
  // numbers; it must outlive the server (the server registers callbacks
  // against it and unregisters them in its destructor).
  obs::MetricsRegistry registry;
  runtime::ServerConfig config = MakeServerConfig(opt, workers, &registry);
  // Declared before the server: the journal's final drain (in the server
  // destructor) must find the file sink still alive.
  std::unique_ptr<obs::JournalFileSink> journal_sink;
  if (opt.journal && !opt.journal_path.empty()) {
    journal_sink = obs::JournalFileSink::Open(opt.journal_path);
    if (journal_sink == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opt.journal_path.c_str());
    }
  }
  runtime::ChronoServer server(db, config);
  if (journal_sink != nullptr && server.journal() != nullptr) {
    server.journal()->AddSink(journal_sink.get());
  }

  obs::CpuProfiler profiler;
  obs::StatsServer stats(server.registry(), server.traces(), server.audit(),
                         server.tail(), server.timeseries());
  stats.SetHealthCallback([&server] {
    runtime::ChronoServer::HealthStatus h = server.Health();
    return obs::StatsServer::Health{h.ok, h.reason};
  });
  stats.SetContentionCallback(
      [&server] { return server.contention()->ContentionJson(); });
  stats.SetProfiler(&profiler);
  if (opt.stats_port >= 0) {
    Status started = stats.Start(opt.stats_port);
    if (!started.ok()) {
      std::fprintf(stderr, "stats server: %s\n",
                   std::string(started.message()).c_str());
    } else {
      std::printf("stats: http://127.0.0.1:%d/metrics (and /traces)\n",
                  stats.port());
    }
  }
  if (!opt.profile_path.empty()) {
    Status prof = profiler.Start(opt.profile_hz);
    if (!prof.ok()) {
      std::fprintf(stderr, "profiler: %s\n", prof.message().c_str());
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_ops{0};
  std::atomic<uint64_t> on_time{0};
  std::atomic<uint64_t> reads_ok{0}, reads_failed{0};
  std::atomic<uint64_t> writes_ok{0}, writes_failed{0};
  // SampleStats external-locking contract: one private instance per
  // client thread, merged after the threads are joined.
  std::vector<SampleStats> per_client(static_cast<size_t>(opt.clients));

  auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(opt.clients));
  for (int c = 0; c < opt.clients; ++c) {
    clients.emplace_back([&, c] {
      obs::ThreadLease lease(obs::ThreadRole::kClient,
                             "chrono-client-" + std::to_string(c));
      Rng rng(opt.seed + 1000 * static_cast<uint64_t>(workers) +
              static_cast<uint64_t>(c));
      SampleStats& lat = per_client[static_cast<size_t>(c)];
      uint64_t ops = 0;
      int64_t chain_key = -1;  // flight id awaiting its follow-up lookup
      while (!stop.load(std::memory_order_relaxed)) {
        std::string sql;
        if (chain_key >= 0) {
          sql = "SELECT fa_seats_left FROM flight_avail WHERE fa_f_id = " +
                std::to_string(chain_key);
          chain_key = -1;
        } else {
          sql = NextQuery(&rng, opt);
          if (opt.chain_pct > 0 &&
              sql.rfind("SELECT f_id, f_al_id", 0) == 0 &&
              rng.NextInt(0, 99) < opt.chain_pct) {
            chain_key = std::atoll(sql.c_str() + sql.rfind('=') + 1);
          }
        }
        const bool is_write = sql.rfind("UPDATE", 0) == 0;
        auto t0 = std::chrono::steady_clock::now();
        auto result = server.Submit(c, std::move(sql)).get();
        auto t1 = std::chrono::steady_clock::now();
        // A stale result is still a success from the client's seat — the
        // degradation is accounted server-side (chrono_stale_serves_total).
        std::atomic<uint64_t>& bucket =
            result.ok() ? (is_write ? writes_ok : reads_ok)
                        : (is_write ? writes_failed : reads_failed);
        bucket.fetch_add(1, std::memory_order_relaxed);
        if (result.ok()) {
          double ms =
              std::chrono::duration<double, std::milli>(t1 - t0).count();
          lat.Add(ms);
          ++ops;
          if (opt.deadline_ms <= 0 ||
              ms <= static_cast<double>(opt.deadline_ms)) {
            on_time.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
    });
  }

  // Measurement window, with a once-a-second live progress line pulled
  // from the same counters the registry exports.
  auto deadline = started + std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(opt.seconds));
  uint64_t last_done = 0;
  auto last_tick = started;
  while (std::chrono::steady_clock::now() < deadline) {
    auto tick = std::min(deadline, std::chrono::steady_clock::now() +
                                       std::chrono::seconds(1));
    std::this_thread::sleep_until(tick);
    if (!opt.progress) continue;
    auto now = std::chrono::steady_clock::now();
    runtime::ServerMetrics m = server.metrics();
    uint64_t done = m.reads + m.writes;
    double interval = std::chrono::duration<double>(now - last_tick).count();
    double secs = std::chrono::duration<double>(now - started).count();
    double precision = server.audit() != nullptr
                           ? server.audit()->snapshot().OverallPrecision()
                           : 0;
    std::printf(
        "  t=%4.1fs  %7.1f qps  hit-rate %5.1f%%  prefetch-prec %5.1f%%  "
        "queue %zu\n",
        secs,
        interval > 0 ? static_cast<double>(done - last_done) / interval : 0,
        100.0 * m.CacheHitRate(), 100.0 * precision,
        server.pool().queue_depth());
    std::fflush(stdout);
    last_done = done;
    last_tick = now;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - started)
                       .count();
  if (profiler.running()) {
    profiler.Stop();
    WriteProfile(opt.profile_path, profiler);
  }

  SampleStats all;
  for (const SampleStats& s : per_client) all.Merge(s);

  RunResult out;
  out.workers = workers;
  out.ops = total_ops.load();
  out.elapsed_s = elapsed;
  out.throughput = elapsed > 0 ? static_cast<double>(out.ops) / elapsed : 0;
  out.p50_ms = all.empty() ? 0 : all.Percentile(0.5);
  out.p99_ms = all.empty() ? 0 : all.Percentile(0.99);
  out.mean_ms = all.empty() ? 0 : all.Mean();
  out.reads_ok = reads_ok.load();
  out.reads_failed = reads_failed.load();
  out.writes_ok = writes_ok.load();
  out.writes_failed = writes_failed.load();
  out.on_time = on_time.load();
  out.goodput =
      elapsed > 0 ? static_cast<double>(out.on_time) / elapsed : 0;
  out.metrics = server.metrics();

  // Snapshot before the server tears down its registry callbacks.
  if (!opt.metrics_path.empty()) {
    FILE* f = std::fopen(opt.metrics_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opt.metrics_path.c_str());
    } else {
      std::string json = obs::ToJson(registry.Snapshot());
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", opt.metrics_path.c_str());
    }
  }
  stats.Stop();
  server.Shutdown();

  // Workers are joined: the journal can take its exact final drain, and
  // the audit scoreboards are complete.
  if (server.journal() != nullptr) server.journal()->Stop();
  if (server.audit() != nullptr) {
    obs::PrefetchAudit::Snapshot snap = server.audit()->snapshot();
    out.prefetch_installed = snap.TotalInstalled();
    out.prefetch_used = snap.TotalUsed();
    out.prefetch_wasted_bytes = snap.TotalWastedBytes();
    out.prefetch_precision = snap.OverallPrecision();
  }
  if (journal_sink != nullptr) {
    journal_sink->Flush();
    std::printf("wrote %s (%llu events)\n", opt.journal_path.c_str(),
                static_cast<unsigned long long>(journal_sink->events_written()));
  }
  if (!opt.trace_path.empty() && server.traces() != nullptr) {
    FILE* f = std::fopen(opt.trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opt.trace_path.c_str());
    } else {
      std::string json = obs::TracesToJson(server.traces()->Snapshot());
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", opt.trace_path.c_str());
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Socket modes (DESIGN.md §13)

struct FleetResult {
  uint64_t ops = 0;
  uint64_t reads_ok = 0, reads_failed = 0;
  uint64_t writes_ok = 0, writes_failed = 0;
  uint64_t connect_failures = 0;
  uint64_t on_time = 0;             // completed within --deadline-ms
  uint64_t expired_rejections = 0;  // kFlagExpired Errors (never executed)
  uint64_t overload_rejections = 0; // brownout Retry-After refusals
  SampleStats latency;  // ms
};

/// One socket client connection. Closed loop keeps up to `pipeline`
/// requests in flight; open loop (`per_conn_qps > 0`) draws Poisson
/// inter-arrival gaps and measures latency from the scheduled send time.
void WireClientLoop(const std::string& host, int port,
                    const BenchOptions& opt, int index, double per_conn_qps,
                    const std::atomic<bool>& stop, FleetResult* out) {
  obs::ThreadLease lease(obs::ThreadRole::kClient,
                         "chrono-client-" + std::to_string(index));
  Rng rng(opt.seed + 7'000'000 + static_cast<uint64_t>(index));
  wire::WireClient client;
  Status connected =
      client.Connect(host, port, /*client_id=*/100 + index);
  if (!connected.ok()) {
    ++out->connect_failures;
    return;
  }
  using Clock = std::chrono::steady_clock;
  // request id -> (scheduled send time, is_write)
  std::map<uint64_t, std::pair<Clock::time_point, bool>> inflight;

  // §17: the per-request budget rides the Query frame, and a completion
  // only counts toward goodput when it came back inside that budget,
  // measured from the *scheduled* send time (open loop included).
  const uint32_t wire_deadline_ms =
      opt.deadline_ms > 0 ? static_cast<uint32_t>(opt.deadline_ms) : 0;

  auto account = [&](const wire::WireClient::Response& response,
                     Clock::time_point now) {
    auto it = inflight.find(response.request_id);
    if (it == inflight.end()) return;
    const bool is_write = it->second.second;
    if (response.result.ok()) {
      double ms = std::chrono::duration<double, std::milli>(
                      now - it->second.first)
                      .count();
      out->latency.Add(ms);
      ++(is_write ? out->writes_ok : out->reads_ok);
      ++out->ops;
      if (wire_deadline_ms == 0 || ms <= static_cast<double>(wire_deadline_ms)) {
        ++out->on_time;
      }
    } else {
      ++(is_write ? out->writes_failed : out->reads_failed);
      if (response.expired) {
        ++out->expired_rejections;
      } else if (response.retry_after_ms > 0) {
        ++out->overload_rejections;
      }
    }
    inflight.erase(it);
  };
  auto send_one = [&](Clock::time_point scheduled) {
    std::string sql = NextQuery(&rng, opt);
    const bool is_write = sql.rfind("UPDATE", 0) == 0;
    uint64_t id = 0;
    if (!client.SendQuery(sql, &id, 0, wire_deadline_ms).ok()) return false;
    inflight.emplace(id, std::make_pair(scheduled, is_write));
    return true;
  };

  if (per_conn_qps > 0) {
    // Open loop: arrivals fire on schedule whether or not responses came
    // back; queueing delay lands in the latency numbers where it belongs.
    auto next_send = Clock::now();
    auto exp_gap = [&] {
      double u = rng.NextDouble();
      if (u >= 1.0) u = 0.999999;
      double gap_s = -std::log(1.0 - u) / per_conn_qps;
      return std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(gap_s));
    };
    while (!stop.load(std::memory_order_relaxed)) {
      auto now = Clock::now();
      if (now >= next_send) {
        if (!send_one(next_send)) break;
        next_send += exp_gap();
        continue;
      }
      int wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(next_send -
                                                                now)
              .count());
      auto response = client.ReadResponse(std::max(1, wait_ms));
      if (response.ok()) {
        account(*response, Clock::now());
      } else if (response.status().code() !=
                 Status::Code::kDeadlineExceeded) {
        break;  // connection gone
      }
    }
  } else {
    // Closed loop with a pipelining window.
    const size_t depth = static_cast<size_t>(std::max(1, opt.pipeline));
    while (!stop.load(std::memory_order_relaxed)) {
      while (inflight.size() < depth &&
             !stop.load(std::memory_order_relaxed)) {
        if (!send_one(Clock::now())) {
          client.Close();
          return;
        }
      }
      auto response = client.ReadResponse(1000);
      if (response.ok()) {
        account(*response, Clock::now());
      } else if (response.status().code() !=
                 Status::Code::kDeadlineExceeded) {
        client.Close();
        return;
      }
    }
  }
  // Drain what is still in flight so the server's journal and our
  // accounting agree, then say Goodbye.
  auto drain_deadline = Clock::now() + std::chrono::seconds(5);
  while (!inflight.empty() && Clock::now() < drain_deadline) {
    auto response = client.ReadResponse(250);
    if (response.ok()) {
      account(*response, Clock::now());
    } else if (response.status().code() != Status::Code::kDeadlineExceeded) {
      break;
    }
  }
  client.Close();
}

/// Drives `connections` socket clients against host:port for the window.
FleetResult RunWireFleet(const std::string& host, int port,
                         const BenchOptions& opt, int connections) {
  std::atomic<bool> stop{false};
  std::vector<FleetResult> per_conn(static_cast<size_t>(connections));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(connections));
  const double per_conn_qps =
      opt.arrival_qps > 0 ? opt.arrival_qps / connections : 0;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      WireClientLoop(host, port, opt, c, per_conn_qps, stop,
                     &per_conn[static_cast<size_t>(c)]);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(opt.seconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  FleetResult all;
  for (const FleetResult& f : per_conn) {
    all.ops += f.ops;
    all.reads_ok += f.reads_ok;
    all.reads_failed += f.reads_failed;
    all.writes_ok += f.writes_ok;
    all.writes_failed += f.writes_failed;
    all.connect_failures += f.connect_failures;
    all.on_time += f.on_time;
    all.expired_rejections += f.expired_rejections;
    all.overload_rejections += f.overload_rejections;
    all.latency.Merge(f.latency);
  }
  return all;
}

/// --wire: in-process node behind a real WireServer, TCP client fleet.
RunResult RunOnceWire(db::Database* db, const BenchOptions& opt, int workers,
                      int connections) {
  obs::MetricsRegistry registry;
  runtime::ServerConfig config = MakeServerConfig(opt, workers, &registry);
  std::unique_ptr<obs::JournalFileSink> journal_sink;
  if (opt.journal && !opt.journal_path.empty()) {
    journal_sink = obs::JournalFileSink::Open(opt.journal_path);
    if (journal_sink == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opt.journal_path.c_str());
    }
  }
  runtime::ChronoServer server(db, config);
  if (journal_sink != nullptr && server.journal() != nullptr) {
    server.journal()->AddSink(journal_sink.get());
  }
  wire::WireServer::Options wire_options;
  wire_options.max_connections = std::max(connections * 2, 4096);
  wire_options.max_pipeline = std::max(opt.pipeline, 8);
  wire::WireServer wire_server(&server, wire_options);
  Status started = wire_server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "wire server: %s\n",
                 std::string(started.message()).c_str());
    std::exit(1);
  }
  obs::CpuProfiler profiler;
  obs::StatsServer stats(server.registry(), server.traces(), server.audit(),
                         server.tail(), server.timeseries());
  stats.SetHealthCallback([&server] {
    runtime::ChronoServer::HealthStatus h = server.Health();
    return obs::StatsServer::Health{h.ok, h.reason};
  });
  stats.SetWireCallback([&wire_server] { return wire_server.StatsJson(); });
  stats.SetContentionCallback(
      [&server] { return server.contention()->ContentionJson(); });
  stats.SetProfiler(&profiler);
  if (opt.stats_port >= 0) {
    Status stats_started = stats.Start(opt.stats_port);
    if (stats_started.ok()) {
      std::printf("stats: http://127.0.0.1:%d/metrics (and /wire)\n",
                  stats.port());
    }
  }
  if (!opt.profile_path.empty()) {
    Status prof = profiler.Start(opt.profile_hz);
    if (!prof.ok()) {
      std::fprintf(stderr, "profiler: %s\n", prof.message().c_str());
    }
  }

  auto t_start = std::chrono::steady_clock::now();
  FleetResult fleet = RunWireFleet("127.0.0.1", wire_server.port(), opt,
                                   connections);
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t_start)
                       .count();
  if (profiler.running()) {
    profiler.Stop();
    WriteProfile(opt.profile_path, profiler);
  }

  RunResult out;
  out.socket_mode = true;
  out.connections = connections;
  out.pipeline = opt.pipeline;
  out.arrival_qps = opt.arrival_qps;
  out.workers = workers;
  out.ops = fleet.ops;
  out.elapsed_s = elapsed;
  out.throughput = elapsed > 0 ? static_cast<double>(out.ops) / elapsed : 0;
  out.p50_ms = fleet.latency.empty() ? 0 : fleet.latency.Percentile(0.5);
  out.p99_ms = fleet.latency.empty() ? 0 : fleet.latency.Percentile(0.99);
  out.mean_ms = fleet.latency.empty() ? 0 : fleet.latency.Mean();
  out.reads_ok = fleet.reads_ok;
  out.reads_failed = fleet.reads_failed;
  out.writes_ok = fleet.writes_ok;
  out.writes_failed = fleet.writes_failed;
  out.on_time = fleet.on_time;
  out.goodput = elapsed > 0 ? static_cast<double>(fleet.on_time) / elapsed : 0;
  out.expired_rejections = fleet.expired_rejections;
  out.overload_rejections = fleet.overload_rejections;
  out.metrics = server.metrics();
  if (fleet.connect_failures > 0) {
    std::fprintf(stderr, "warning: %llu connections failed to connect\n",
                 static_cast<unsigned long long>(fleet.connect_failures));
  }

  if (!opt.metrics_path.empty()) {
    FILE* f = std::fopen(opt.metrics_path.c_str(), "w");
    if (f != nullptr) {
      std::string json = obs::ToJson(registry.Snapshot());
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", opt.metrics_path.c_str());
    }
  }
  // Frontend first (drains in-flight requests), then the runtime: the
  // journal's recorded == drained contract survives the network hop.
  wire_server.Stop();
  wire::WireServer::Stats ws = wire_server.stats();
  out.wire_accepted = ws.accepted;
  out.wire_protocol_errors = ws.protocol_errors;
  out.wire_requests = ws.requests;
  out.wire_p99_us = ws.p99_latency_us;
  stats.Stop();
  server.Shutdown();
  if (server.journal() != nullptr) server.journal()->Stop();
  if (server.audit() != nullptr) {
    obs::PrefetchAudit::Snapshot snap = server.audit()->snapshot();
    out.prefetch_installed = snap.TotalInstalled();
    out.prefetch_used = snap.TotalUsed();
    out.prefetch_wasted_bytes = snap.TotalWastedBytes();
    out.prefetch_precision = snap.OverallPrecision();
  }
  if (journal_sink != nullptr) journal_sink->Flush();
  return out;
}

/// --serve: run the node (WireServer + StatsServer) for the window, then
/// drain gracefully and verify the journal contract. Returns the exit
/// code: non-zero when the drain dropped events.
int RunServe(db::Database* db, const BenchOptions& opt, int workers) {
  obs::MetricsRegistry registry;
  runtime::ServerConfig config = MakeServerConfig(opt, workers, &registry);
  std::unique_ptr<obs::JournalFileSink> journal_sink;
  if (opt.journal && !opt.journal_path.empty()) {
    journal_sink = obs::JournalFileSink::Open(opt.journal_path);
  }
  runtime::ChronoServer server(db, config);
  if (journal_sink != nullptr && server.journal() != nullptr) {
    server.journal()->AddSink(journal_sink.get());
  }
  wire::WireServer::Options wire_options;
  wire_options.port = opt.port;
  wire_options.max_pipeline = std::max(opt.pipeline, 128);
  wire::WireServer wire_server(&server, wire_options);
  Status started = wire_server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "wire server: %s\n",
                 std::string(started.message()).c_str());
    return 1;
  }
  obs::CpuProfiler profiler;
  obs::StatsServer stats(server.registry(), server.traces(), server.audit(),
                         server.tail(), server.timeseries());
  stats.SetHealthCallback([&server] {
    runtime::ChronoServer::HealthStatus h = server.Health();
    return obs::StatsServer::Health{h.ok, h.reason};
  });
  stats.SetWireCallback([&wire_server] { return wire_server.StatsJson(); });
  stats.SetContentionCallback(
      [&server] { return server.contention()->ContentionJson(); });
  stats.SetProfiler(&profiler);
  if (opt.stats_port >= 0) {
    Status stats_started = stats.Start(opt.stats_port);
    if (stats_started.ok()) {
      std::printf("stats: http://127.0.0.1:%d/metrics (and /wire)\n",
                  stats.port());
    }
  }
  if (!opt.profile_path.empty()) {
    Status prof = profiler.Start(opt.profile_hz);
    if (!prof.ok()) {
      std::fprintf(stderr, "profiler: %s\n", prof.message().c_str());
    }
  }
  std::printf("serving on 127.0.0.1:%d for %.1f s\n", wire_server.port(),
              opt.seconds);
  std::fflush(stdout);

  auto started_at = std::chrono::steady_clock::now();
  auto deadline = started_at + std::chrono::duration_cast<
                                   std::chrono::steady_clock::duration>(
                                   std::chrono::duration<double>(opt.seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    auto tick = std::min(deadline, std::chrono::steady_clock::now() +
                                       std::chrono::seconds(1));
    std::this_thread::sleep_until(tick);
    if (!opt.progress) continue;
    wire::WireServer::Stats live = wire_server.stats();
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - started_at)
                      .count();
    std::printf("  t=%4.1fs  conns %llu  requests %llu  queue %zu\n", secs,
                static_cast<unsigned long long>(live.active),
                static_cast<unsigned long long>(live.requests),
                server.pool().queue_depth());
    std::fflush(stdout);
  }
  wire_server.Stop();
  wire::WireServer::Stats ws = wire_server.stats();
  if (profiler.running()) {
    profiler.Stop();
    WriteProfile(opt.profile_path, profiler);
  }
  stats.Stop();
  server.Shutdown();
  if (server.journal() != nullptr) server.journal()->Stop();
  if (journal_sink != nullptr) journal_sink->Flush();

  uint64_t recorded = 0, drained = 0, dropped = 0;
  if (server.journal() != nullptr) {
    recorded = server.journal()->events_recorded();
    drained = server.journal()->events_drained();
    dropped = server.journal()->events_dropped();
  }
  std::printf(
      "wire: accepted %llu  requests %llu  overload-rejects %llu  "
      "protocol-errors %llu  "
      "closed client/idle/error %llu/%llu/%llu  bytes in/out %llu/%llu\n",
      static_cast<unsigned long long>(ws.accepted),
      static_cast<unsigned long long>(ws.requests),
      static_cast<unsigned long long>(ws.overload_rejects),
      static_cast<unsigned long long>(ws.protocol_errors),
      static_cast<unsigned long long>(ws.closed_by_client),
      static_cast<unsigned long long>(ws.closed_by_idle),
      static_cast<unsigned long long>(ws.closed_by_error),
      static_cast<unsigned long long>(ws.bytes_in),
      static_cast<unsigned long long>(ws.bytes_out));
  std::printf("journal: recorded %llu  drained %llu  dropped %llu\n",
              static_cast<unsigned long long>(recorded),
              static_cast<unsigned long long>(drained),
              static_cast<unsigned long long>(dropped));
  if (recorded != drained || dropped != 0) {
    std::fprintf(stderr, "FAIL: journal drain incomplete\n");
    return 1;
  }
  return 0;
}

/// --connect: client fleet against an external --serve node.
RunResult RunConnect(const BenchOptions& opt, const std::string& host,
                     int port, int connections) {
  auto t_start = std::chrono::steady_clock::now();
  FleetResult fleet = RunWireFleet(host, port, opt, connections);
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t_start)
                       .count();
  RunResult out;
  out.socket_mode = true;
  out.connections = connections;
  out.pipeline = opt.pipeline;
  out.arrival_qps = opt.arrival_qps;
  out.ops = fleet.ops;
  out.elapsed_s = elapsed;
  out.throughput = elapsed > 0 ? static_cast<double>(out.ops) / elapsed : 0;
  out.p50_ms = fleet.latency.empty() ? 0 : fleet.latency.Percentile(0.5);
  out.p99_ms = fleet.latency.empty() ? 0 : fleet.latency.Percentile(0.99);
  out.mean_ms = fleet.latency.empty() ? 0 : fleet.latency.Mean();
  out.reads_ok = fleet.reads_ok;
  out.reads_failed = fleet.reads_failed;
  out.writes_ok = fleet.writes_ok;
  out.writes_failed = fleet.writes_failed;
  out.on_time = fleet.on_time;
  out.goodput = elapsed > 0 ? static_cast<double>(fleet.on_time) / elapsed : 0;
  out.expired_rejections = fleet.expired_rejections;
  out.overload_rejections = fleet.overload_rejections;
  if (fleet.connect_failures > 0) {
    std::fprintf(stderr, "warning: %llu connections failed to connect\n",
                 static_cast<unsigned long long>(fleet.connect_failures));
  }
  return out;
}

void WriteJson(const BenchOptions& opt, const std::vector<RunResult>& runs) {
  FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"serve_bench\",\n"
               "  \"workload\": \"seats-point-mix\",\n"
               "  \"clients\": %d,\n"
               "  \"seconds\": %.1f,\n"
               "  \"db_latency_us\": %llu,\n"
               "  \"write_pct\": %d,\n"
               "  \"cache_mb\": %zu,\n"
               "  \"shards\": %zu,\n"
               "  \"payload_rows\": %lld,\n"
               "  \"runs\": [\n",
               opt.clients, opt.seconds,
               static_cast<unsigned long long>(opt.db_latency_us),
               opt.write_pct, opt.cache_mb, opt.shards,
               static_cast<long long>(opt.payload_rows));
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(
        f,
        "    {\"workers\": %d, \"ops\": %llu, \"throughput_qps\": %.1f, "
        "\"mean_ms\": %.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"cache_hit_rate\": %.4f, \"remote_plain\": %llu, "
        "\"backend_coalesced\": %llu, "
        "\"remote_combined\": %llu, \"predictions_cached\": %llu, "
        "\"prefetch_installed\": %llu, \"prefetch_used\": %llu, "
        "\"prefetch_precision\": %.4f, \"prefetch_wasted_bytes\": %llu, "
        "\"demand_success_rate\": %.6f, \"faults_injected\": %llu, "
        "\"backend_retries\": %llu, \"backend_timeouts\": %llu, "
        "\"stale_serves\": %llu, \"breaker_rejects\": %llu, "
        "\"prefetches_shed_queue\": %llu, "
        "\"prefetches_shed_breaker\": %llu, "
        "\"goodput_qps\": %.1f, \"on_time\": %llu, "
        "\"expired_rejections\": %llu, \"overload_rejections\": %llu, "
        "\"deadline_expired\": %llu, \"brownout_sheds\": %llu",
        r.workers, static_cast<unsigned long long>(r.ops), r.throughput,
        r.mean_ms, r.p50_ms, r.p99_ms, r.metrics.CacheHitRate(),
        static_cast<unsigned long long>(r.metrics.remote_plain),
        static_cast<unsigned long long>(r.metrics.backend_coalesced),
        static_cast<unsigned long long>(r.metrics.remote_combined),
        static_cast<unsigned long long>(r.metrics.predictions_cached),
        static_cast<unsigned long long>(r.prefetch_installed),
        static_cast<unsigned long long>(r.prefetch_used),
        r.prefetch_precision,
        static_cast<unsigned long long>(r.prefetch_wasted_bytes),
        r.DemandSuccessRate(),
        static_cast<unsigned long long>(r.metrics.faults_injected),
        static_cast<unsigned long long>(r.metrics.backend_retries),
        static_cast<unsigned long long>(r.metrics.backend_timeouts),
        static_cast<unsigned long long>(r.metrics.stale_serves),
        static_cast<unsigned long long>(r.metrics.breaker_rejects),
        static_cast<unsigned long long>(r.metrics.prefetches_dropped),
        static_cast<unsigned long long>(r.metrics.prefetches_shed_breaker),
        r.goodput, static_cast<unsigned long long>(r.on_time),
        static_cast<unsigned long long>(r.expired_rejections),
        static_cast<unsigned long long>(r.overload_rejections),
        static_cast<unsigned long long>(r.metrics.deadline_expired),
        static_cast<unsigned long long>(r.metrics.brownout_sheds));
    if (r.socket_mode) {
      std::fprintf(
          f,
          ", \"transport\": \"socket\", \"connections\": %d, "
          "\"pipeline\": %d, \"arrival_qps\": %.1f, "
          "\"wire_accepted\": %llu, \"wire_protocol_errors\": %llu, "
          "\"wire_requests\": %llu, \"wire_p99_us\": %.1f",
          r.connections, r.pipeline, r.arrival_qps,
          static_cast<unsigned long long>(r.wire_accepted),
          static_cast<unsigned long long>(r.wire_protocol_errors),
          static_cast<unsigned long long>(r.wire_requests), r.wire_p99_us);
    } else {
      std::fprintf(f, ", \"transport\": \"in-process\"");
    }
    std::fprintf(f, "}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", opt.json_path.c_str());
}

std::vector<int> ParseSweep(const std::string& list) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    out.push_back(
        static_cast<int>(IntFlag("--sweep", list.substr(pos, comma - pos))));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  obs::ThreadLease main_lease(obs::ThreadRole::kMain, "chrono-main");
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg == "--workers") {
      opt.worker_counts = {static_cast<int>(IntFlag(arg, next()))};
    } else if (arg == "--sweep") {
      opt.worker_counts = ParseSweep(next());
    } else if (arg == "--clients") {
      opt.clients = static_cast<int>(IntFlag(arg, next()));
    } else if (arg == "--seconds") {
      opt.seconds = DoubleFlag(arg, next());
    } else if (arg == "--shards") {
      opt.shards = static_cast<size_t>(UintFlag(arg, next()));
    } else if (arg == "--cache-mb") {
      opt.cache_mb = static_cast<size_t>(UintFlag(arg, next()));
    } else if (arg == "--db-us") {
      opt.db_latency_us = UintFlag(arg, next());
    } else if (arg == "--write-pct") {
      opt.write_pct = static_cast<int>(IntFlag(arg, next()));
    } else if (arg == "--hot-pct") {
      opt.hot_pct = static_cast<int>(IntFlag(arg, next()));
    } else if (arg == "--customers") {
      opt.customers = IntFlag(arg, next());
    } else if (arg == "--flights") {
      opt.flights = IntFlag(arg, next());
    } else if (arg == "--payload-rows") {
      opt.payload_rows = IntFlag(arg, next());
    } else if (arg == "--seed") {
      opt.seed = UintFlag(arg, next());
    } else if (arg == "--json") {
      opt.json_path = next();
    } else if (arg == "--stats-port") {
      opt.stats_port = static_cast<int>(IntFlag(arg, next()));
    } else if (arg == "--fault-error-pct") {
      opt.fault.error_pct = DoubleFlag(arg, next());
    } else if (arg == "--fault-spike") {
      opt.fault.spike_multiplier = DoubleFlag(arg, next());
    } else if (arg == "--fault-spike-pct") {
      opt.fault.spike_pct = DoubleFlag(arg, next());
    } else if (arg == "--fault-blackout-ms") {
      opt.fault.blackout_us = UintFlag(arg, next()) * 1000;
    } else if (arg == "--fault-blackout-at-ms") {
      opt.fault.blackout_start_us = UintFlag(arg, next()) * 1000;
    } else if (arg == "--fault-seed") {
      opt.fault.seed = UintFlag(arg, next());
    } else if (arg == "--deadline-ms") {
      opt.deadline_ms = IntFlag(arg, next());
    } else if (arg == "--attempt-timeout-ms") {
      opt.attempt_timeout_ms = IntFlag(arg, next());
    } else if (arg == "--retries") {
      opt.retries = static_cast<int>(IntFlag(arg, next()));
    } else if (arg == "--no-retries") {
      opt.enable_retries = false;
    } else if (arg == "--stale-serve-ms") {
      opt.stale_serve_ms = UintFlag(arg, next());
    } else if (arg == "--queue-target-ms") {
      opt.queue_target_ms = UintFlag(arg, next());
    } else if (arg == "--brownout-sample-ms") {
      opt.brownout_sample_ms = UintFlag(arg, next());
    } else if (arg == "--metrics-out") {
      opt.metrics_path = next();
    } else if (arg == "--journal-out") {
      opt.journal_path = next();
    } else if (arg == "--trace-out") {
      opt.trace_path = next();
    } else if (arg == "--no-journal") {
      opt.journal = false;
    } else if (arg == "--no-telemetry") {
      opt.telemetry = false;
    } else if (arg == "--no-lock-telemetry") {
      opt.lock_telemetry = false;
    } else if (arg == "--profile-out") {
      opt.profile_path = next();
    } else if (arg == "--profile-hz") {
      opt.profile_hz = static_cast<int>(IntFlag(arg, next()));
    } else if (arg == "--chain-pct") {
      opt.chain_pct = static_cast<int>(IntFlag(arg, next()));
    } else if (arg == "--no-progress") {
      opt.progress = false;
    } else if (arg == "--wire") {
      opt.wire = true;
    } else if (arg == "--serve") {
      opt.serve = true;
    } else if (arg == "--connect") {
      opt.connect = next();
    } else if (arg == "--port") {
      opt.port = static_cast<int>(IntFlag(arg, next()));
    } else if (arg == "--connections") {
      opt.conn_counts = {static_cast<int>(IntFlag(arg, next()))};
    } else if (arg == "--conn-sweep") {
      opt.conn_counts = ParseSweep(next());
    } else if (arg == "--pipeline") {
      opt.pipeline = static_cast<int>(IntFlag(arg, next()));
    } else if (arg == "--arrival-qps") {
      opt.arrival_qps = DoubleFlag(arg, next());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  // Well-formed but out-of-range values get the same exit-2 treatment as
  // malformed ones; a bench that silently does nothing helps nobody.
  auto reject = [](const char* flag, const char* why) {
    std::fprintf(stderr, "invalid value for %s: %s\n", flag, why);
    std::exit(2);
  };
  if (!(opt.seconds > 0)) reject("--seconds", "must be > 0");
  if (opt.clients < 1) reject("--clients", "must be >= 1");
  for (int w : opt.worker_counts) {
    if (w < 1) reject("--workers/--sweep", "worker counts must be >= 1");
  }
  if (opt.customers < 1 || opt.flights < 1) {
    reject("--customers/--flights", "keyspace must be >= 1");
  }
  if (opt.payload_rows < 1) reject("--payload-rows", "must be >= 1");
  if (opt.write_pct < 0 || opt.write_pct > 100 || opt.hot_pct < 0 ||
      opt.hot_pct > 100 || opt.chain_pct < 0 || opt.chain_pct > 100) {
    reject("--write-pct/--hot-pct/--chain-pct", "must be in [0, 100]");
  }
  if (opt.fault.error_pct < 0 || opt.fault.error_pct > 100 ||
      opt.fault.spike_pct < 0 || opt.fault.spike_pct > 100) {
    reject("--fault-error-pct/--fault-spike-pct", "must be in [0, 100]");
  }
  if (opt.fault.spike_multiplier < 1.0) {
    reject("--fault-spike", "multiplier must be >= 1");
  }
  if (opt.retries < 1) reject("--retries", "must be >= 1");
  if (opt.brownout_sample_ms < 1) {
    reject("--brownout-sample-ms", "must be >= 1");
  }
  if (opt.profile_hz < 1 || opt.profile_hz > 1000) {
    reject("--profile-hz", "must be in [1, 1000]");
  }
  if (opt.pipeline < 1) reject("--pipeline", "must be >= 1");
  if (opt.arrival_qps < 0) reject("--arrival-qps", "must be >= 0");
  if (opt.port < 0 || opt.port > 65535) reject("--port", "not a TCP port");
  for (int c : opt.conn_counts) {
    if (c < 1) reject("--connections/--conn-sweep", "must be >= 1");
  }
  int modes = (opt.wire ? 1 : 0) + (opt.serve ? 1 : 0) +
              (opt.connect.empty() ? 0 : 1);
  if (modes > 1) {
    reject("--wire/--serve/--connect", "modes are mutually exclusive");
  }
  if (opt.conn_counts.empty()) opt.conn_counts = {opt.clients};

  // --connect needs no local database: just drive the remote node.
  if (!opt.connect.empty()) {
    size_t colon = opt.connect.rfind(':');
    int64_t port64 = 0;
    if (colon == std::string::npos || colon == 0 ||
        !ParseInt64(opt.connect.substr(colon + 1), &port64) || port64 < 1 ||
        port64 > 65535) {
      reject("--connect", "expected HOST:PORT");
    }
    std::string host = opt.connect.substr(0, colon);
    std::vector<RunResult> runs;
    for (int connections : opt.conn_counts) {
      RunResult r =
          RunConnect(opt, host, static_cast<int>(port64), connections);
      runs.push_back(r);
      std::printf(
          "connections=%d  pipeline=%d  %.1f qps  goodput %.1f/s  "
          "mean %.2f ms  p50 %.2f ms  p99 %.2f ms  success %.2f%%  "
          "(expired %llu, overload-rejected %llu)\n",
          r.connections, r.pipeline, r.throughput, r.goodput, r.mean_ms,
          r.p50_ms, r.p99_ms, 100.0 * r.DemandSuccessRate(),
          static_cast<unsigned long long>(r.expired_rejections),
          static_cast<unsigned long long>(r.overload_rejections));
    }
    if (!opt.json_path.empty()) WriteJson(opt, runs);
    return 0;
  }

  std::printf(
      "Populating SEATS (%lld customers, %lld flights, %lld rows/key)...\n",
      static_cast<long long>(opt.customers),
      static_cast<long long>(opt.flights),
      static_cast<long long>(opt.payload_rows));
  db::Database db;
  workloads::SeatsWorkload::Config seats_config;
  seats_config.customers = opt.customers;
  seats_config.flights = opt.flights;
  seats_config.rows_per_key = opt.payload_rows;
  workloads::SeatsWorkload seats(seats_config);
  seats.Populate(&db);

  if (opt.serve) {
    return RunServe(&db, opt, opt.worker_counts.front());
  }

  if (opt.wire) {
    std::vector<RunResult> runs;
    for (int connections : opt.conn_counts) {
      RunResult r =
          RunOnceWire(&db, opt, opt.worker_counts.front(), connections);
      runs.push_back(r);
      std::printf(
          "connections=%d  pipeline=%d  workers=%d  %.1f qps  "
          "goodput %.1f/s  mean %.2f ms  "
          "p50 %.2f ms  p99 %.2f ms  hit-rate %.1f%%  "
          "(accepted %llu, protocol-errors %llu, wire-p99 %.0f us)\n",
          r.connections, r.pipeline, r.workers, r.throughput, r.goodput,
          r.mean_ms, r.p50_ms, r.p99_ms, 100.0 * r.metrics.CacheHitRate(),
          static_cast<unsigned long long>(r.wire_accepted),
          static_cast<unsigned long long>(r.wire_protocol_errors),
          r.wire_p99_us);
      if (r.expired_rejections + r.overload_rejections +
              r.metrics.brownout_sheds >
          0) {
        std::printf(
            "  overload: expired %llu  overload-rejected %llu  "
            "server sheds %llu  expired-in-queue %llu\n",
            static_cast<unsigned long long>(r.expired_rejections),
            static_cast<unsigned long long>(r.overload_rejections),
            static_cast<unsigned long long>(r.metrics.brownout_sheds),
            static_cast<unsigned long long>(r.metrics.deadline_expired));
      }
    }
    if (runs.size() > 1) {
      double base = runs.front().throughput;
      for (const RunResult& r : runs) {
        std::printf("conn scaling %d -> %d: %.2fx\n",
                    runs.front().connections, r.connections,
                    base > 0 ? r.throughput / base : 0);
      }
    }
    if (!opt.json_path.empty()) WriteJson(opt, runs);
    return 0;
  }

  std::vector<RunResult> runs;
  for (int workers : opt.worker_counts) {
    RunResult r = RunOnce(&db, opt, workers);
    runs.push_back(r);
    std::printf(
        "workers=%d  clients=%d  %.1f qps  mean %.2f ms  p50 %.2f ms  "
        "p99 %.2f ms  hit-rate %.1f%%  (plain %llu, coalesced %llu, "
        "combined %llu, predicted %llu, errors %llu)\n",
        r.workers, opt.clients, r.throughput, r.mean_ms, r.p50_ms, r.p99_ms,
        100.0 * r.metrics.CacheHitRate(),
        static_cast<unsigned long long>(r.metrics.remote_plain),
        static_cast<unsigned long long>(r.metrics.backend_coalesced),
        static_cast<unsigned long long>(r.metrics.remote_combined),
        static_cast<unsigned long long>(r.metrics.predictions_cached),
        static_cast<unsigned long long>(r.metrics.errors));
    if (net::FaultInjector(opt.fault).enabled() || opt.stale_serve_ms > 0) {
      std::printf(
          "  degradation: success %.2f%% (reads %llu/%llu, writes %llu/%llu)"
          "  faults %llu  retries %llu  timeouts %llu  stale %llu  "
          "breaker-rejects %llu  shed q/brk %llu/%llu\n",
          100.0 * r.DemandSuccessRate(),
          static_cast<unsigned long long>(r.reads_ok),
          static_cast<unsigned long long>(r.reads_ok + r.reads_failed),
          static_cast<unsigned long long>(r.writes_ok),
          static_cast<unsigned long long>(r.writes_ok + r.writes_failed),
          static_cast<unsigned long long>(r.metrics.faults_injected),
          static_cast<unsigned long long>(r.metrics.backend_retries),
          static_cast<unsigned long long>(r.metrics.backend_timeouts),
          static_cast<unsigned long long>(r.metrics.stale_serves),
          static_cast<unsigned long long>(r.metrics.breaker_rejects),
          static_cast<unsigned long long>(r.metrics.prefetches_dropped),
          static_cast<unsigned long long>(r.metrics.prefetches_shed_breaker));
    }
  }

  if (runs.size() > 1) {
    double base = runs.front().throughput;
    for (const RunResult& r : runs) {
      std::printf("scaling %d -> %dx workers: %.2fx\n", runs.front().workers,
                  r.workers, base > 0 ? r.throughput / base : 0);
    }
  }
  if (!opt.json_path.empty()) WriteJson(opt, runs);
  return 0;
}
