// chrono_audit — offline analyzer for prefetch-efficacy event journals
// (serve_bench --journal-out / chronocache_sim --journal-out). Replays the
// binary event stream through the same PrefetchAudit fold the live
// /prefetch endpoint uses, then prints the cost/benefit report:
//
//   chrono_audit serve.journal
//   chrono_audit serve.journal --json      # the /prefetch JSON document
//
// Exit 0 on success, 2 on a malformed or unreadable journal.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/audit.h"
#include "obs/journal.h"
#include "obs/trace.h"

using namespace chrono;

namespace {

void Usage() {
  std::printf(
      "chrono_audit — prefetch-efficacy journal analyzer\n\n"
      "  chrono_audit FILE [--json]\n\n"
      "  FILE     binary journal written by serve_bench --journal-out or\n"
      "           chronocache_sim --journal-out\n"
      "  --json   emit the /prefetch JSON document instead of the report\n");
}

std::string HumanBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= 10ull << 20) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= 10ull << 10) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

void PrintScoreTable(const char* title,
                     const std::vector<obs::PrefetchAudit::Score>& scores,
                     bool plan_columns) {
  if (scores.empty()) return;
  std::printf("\n%s\n", title);
  if (plan_columns) {
    std::printf("  %-12s %7s %7s %6s %6s %6s %9s %11s %10s %12s\n", "plan",
                "issued", "install", "used", "evict-", "inval", "precision",
                "wasted", "ttfu-p50", "net-saved");
  } else {
    std::printf("  %-12s %7s %6s %6s %6s %9s %11s %10s %12s\n", "edge",
                "install", "used", "evict-", "inval", "precision", "wasted",
                "ttfu-p50", "net-saved");
  }
  for (const obs::PrefetchAudit::Score& s : scores) {
    std::string key = s.key.size() > 12 ? s.key.substr(0, 11) + "…" : s.key;
    if (plan_columns) {
      std::printf("  %-12s %7llu %7llu %6llu %6llu %6llu %8.1f%% %11s "
                  "%8.1fms %10.1fms\n",
                  key.c_str(), static_cast<unsigned long long>(s.issued),
                  static_cast<unsigned long long>(s.installed),
                  static_cast<unsigned long long>(s.used),
                  static_cast<unsigned long long>(s.evicted_unused),
                  static_cast<unsigned long long>(s.invalidated),
                  100.0 * s.precision, HumanBytes(s.wasted_bytes).c_str(),
                  s.median_ttfu_us / 1e3, s.net_saved_us / 1e3);
    } else {
      std::printf("  %-12s %7llu %6llu %6llu %6llu %8.1f%% %11s %8.1fms "
                  "%10.1fms\n",
                  key.c_str(), static_cast<unsigned long long>(s.installed),
                  static_cast<unsigned long long>(s.used),
                  static_cast<unsigned long long>(s.evicted_unused),
                  static_cast<unsigned long long>(s.invalidated),
                  100.0 * s.precision, HumanBytes(s.wasted_bytes).c_str(),
                  s.median_ttfu_us / 1e3, s.net_saved_us / 1e3);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg == "--json") {
      json = true;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (path.empty()) {
    Usage();
    return 2;
  }

  Result<std::vector<obs::JournalEvent>> events =
      obs::ReadJournalFile(path);
  if (!events.ok()) {
    std::fprintf(stderr, "chrono_audit: %s\n",
                 events.status().ToString().c_str());
    return 2;
  }

  obs::PrefetchAudit audit;
  audit.OnEvents(events->data(), events->size());
  obs::PrefetchAudit::Snapshot snap = audit.snapshot();

  if (json) {
    std::string doc = obs::PrefetchAuditJson(snap);
    std::fwrite(doc.data(), 1, doc.size(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }

  std::printf("journal: %s (%zu events)\n", path.c_str(), events->size());
  std::printf("requests: %llu",
              static_cast<unsigned long long>(snap.requests));
  for (int o = 0; o < obs::kTraceOutcomeCount; ++o) {
    if (snap.outcome_counts[o] == 0) continue;
    std::printf("  %s=%llu",
                obs::TraceOutcomeName(static_cast<obs::TraceOutcome>(o)),
                static_cast<unsigned long long>(snap.outcome_counts[o]));
  }
  std::printf("\n");

  // Overall prefetch verdict.
  std::printf("\nprefetch efficacy\n");
  std::printf("  installed        : %llu\n",
              static_cast<unsigned long long>(snap.TotalInstalled()));
  std::printf("  used             : %llu\n",
              static_cast<unsigned long long>(snap.TotalUsed()));
  std::printf("  precision        : %.1f%%\n",
              100.0 * snap.OverallPrecision());
  std::printf("  invalidated      : %llu\n",
              static_cast<unsigned long long>(snap.TotalInvalidated()));
  std::printf("  wasted WAN bytes : %s\n",
              HumanBytes(snap.TotalWastedBytes()).c_str());

  // Availability/degradation board: how the fault-tolerant remote path
  // behaved — retries absorbed, calls timed out, breaker trips, stale
  // fallbacks served, best-effort work shed.
  if (snap.availability.Any()) {
    const obs::PrefetchAudit::Availability& av = snap.availability;
    std::printf("\navailability / degradation\n");
    std::printf("  backend retries  : %llu (%.1f ms backoff waited)\n",
                static_cast<unsigned long long>(av.backend_retries),
                static_cast<double>(av.backoff_us) / 1e3);
    std::printf("  backend timeouts : %llu (%llu on writes)\n",
                static_cast<unsigned long long>(av.backend_timeouts),
                static_cast<unsigned long long>(av.write_timeouts));
    std::printf("  breaker trips    : %llu open, %llu half-open, "
                "%llu re-closed\n",
                static_cast<unsigned long long>(av.breaker_open),
                static_cast<unsigned long long>(av.breaker_half_open),
                static_cast<unsigned long long>(av.breaker_closed));
    std::printf("  stale serves     : %llu",
                static_cast<unsigned long long>(av.stale_serves));
    if (av.stale_serves > 0) {
      std::printf("  (mean age %.1f ms)",
                  static_cast<double>(av.stale_age_us) /
                      static_cast<double>(av.stale_serves) / 1e3);
    }
    std::printf("\n");
    std::printf("  prefetches shed  : %llu queue-full, %llu breaker\n",
                static_cast<unsigned long long>(av.shed_queue),
                static_cast<unsigned long long>(av.shed_breaker));
    std::printf("  coalesced fetches: %llu joined an in-flight demand call\n",
                static_cast<unsigned long long>(av.backend_coalesced));
  }

  // Overload control (§17): what the brownout ladder refused, deadlines
  // that expired while queued, and the must-stay-zero late-execution
  // violation count.
  if (snap.overload.Any()) {
    const obs::PrefetchAudit::Overload& ov = snap.overload;
    std::printf("\noverload control\n");
    std::printf("  shed             : %llu prefetch, %llu pipeline, "
                "%llu admission\n",
                static_cast<unsigned long long>(ov.shed_prefetch),
                static_cast<unsigned long long>(ov.shed_pipeline),
                static_cast<unsigned long long>(ov.shed_admission));
    std::printf("  expired in queue : %llu rejected unexecuted "
                "(%llu during drain)",
                static_cast<unsigned long long>(ov.deadline_expired),
                static_cast<unsigned long long>(ov.expired_in_drain));
    if (ov.deadline_expired > 0) {
      std::printf("  (mean %.1f ms past deadline)",
                  static_cast<double>(ov.expired_lateness_us) /
                      static_cast<double>(ov.deadline_expired) / 1e3);
    }
    std::printf("\n");
    std::printf("  brownout steps   : %llu transitions, peak level %llu\n",
                static_cast<unsigned long long>(ov.brownout_transitions),
                static_cast<unsigned long long>(ov.max_level));
    std::printf("  late executions  : %llu%s\n",
                static_cast<unsigned long long>(ov.late_executions),
                ov.late_executions == 0 ? " (invariant holds)"
                                        : "  ** VIOLATION **");
  }

  // Wire frontend (present only when the journal was recorded behind TCP).
  if (snap.wire.Any()) {
    const obs::PrefetchAudit::Wire& wire = snap.wire;
    std::printf("\nwire frontend\n");
    std::printf("  requests         : %llu (%llu answered with Error)\n",
                static_cast<unsigned long long>(wire.requests),
                static_cast<unsigned long long>(wire.failed));
    std::printf("  response bytes   : %s\n",
                HumanBytes(wire.response_bytes).c_str());
    std::printf("  wire latency     : mean %.1f us, p50 %.1f us, "
                "p99 %.1f us\n",
                wire.mean_latency_us, wire.p50_latency_us,
                wire.p99_latency_us);
  }

  // Stage-time profile across all requests that carried latency.
  if (snap.requests_with_latency > 0) {
    std::printf("\nstage-time profile (%llu requests)\n",
                static_cast<unsigned long long>(snap.requests_with_latency));
    uint64_t total = snap.stage_sum_us[obs::PrefetchAudit::kStageSlots - 1];
    for (int s = 0; s < obs::PrefetchAudit::kStageSlots; ++s) {
      const char* name =
          s < static_cast<int>(obs::Stage::kCount)
              ? obs::StageName(static_cast<obs::Stage>(s))
              : "total";
      uint64_t sum = snap.stage_sum_us[s];
      std::printf("  %-14s %12.3f s  (%5.1f%%)\n", name,
                  static_cast<double>(sum) / 1e6,
                  total > 0 ? 100.0 * static_cast<double>(sum) /
                                  static_cast<double>(total)
                            : 0.0);
    }
  }

  PrintScoreTable("per-plan scoreboard (key = root template)", snap.plans,
                  /*plan_columns=*/true);
  PrintScoreTable("per-edge scoreboard", snap.edges, /*plan_columns=*/false);

  // Waste report: who is burning WAN bytes without earning hits.
  std::vector<obs::PrefetchAudit::Score> wasteful;
  for (const auto& s : snap.plans) {
    if (s.wasted_bytes > 0) wasteful.push_back(s);
  }
  std::sort(wasteful.begin(), wasteful.end(),
            [](const obs::PrefetchAudit::Score& a,
               const obs::PrefetchAudit::Score& b) {
              return a.wasted_bytes > b.wasted_bytes;
            });
  if (!wasteful.empty()) {
    std::printf("\nwaste report (plans by unused bytes)\n");
    for (const auto& s : wasteful) {
      std::printf("  plan %-12s %11s wasted  (%llu unused evictions, "
                  "%llu unused invalidations, precision %.1f%%)\n",
                  s.key.c_str(), HumanBytes(s.wasted_bytes).c_str(),
                  static_cast<unsigned long long>(s.evicted_unused),
                  static_cast<unsigned long long>(s.invalidated_unused),
                  100.0 * s.precision);
    }
  }

  // Per-template latency breakdown by outcome.
  if (!snap.templates.empty()) {
    std::printf("\nper-template latency (µs)\n");
    std::printf("  %-20s %9s  %-14s %8s %10s %10s %10s\n", "template",
                "requests", "outcome", "count", "mean", "p50", "p99");
    for (const auto& t : snap.templates) {
      char tmpl_buf[24], req_buf[24];
      std::snprintf(tmpl_buf, sizeof(tmpl_buf), "%" PRIu64, t.tmpl);
      std::snprintf(req_buf, sizeof(req_buf), "%" PRIu64, t.requests);
      bool first = true;
      for (int o = 0; o < obs::kTraceOutcomeCount; ++o) {
        const obs::PrefetchAudit::OutcomeLatency& lat = t.outcomes[o];
        if (lat.count == 0) continue;
        std::printf("  %-20s %9s  %-14s %8llu %10.1f %10.1f %10.1f\n",
                    first ? tmpl_buf : "", first ? req_buf : "",
                    obs::TraceOutcomeName(static_cast<obs::TraceOutcome>(o)),
                    static_cast<unsigned long long>(lat.count), lat.mean_us,
                    lat.p50_us, lat.p99_us);
        first = false;
      }
    }
  }
  return 0;
}
