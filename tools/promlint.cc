// promlint — structural lint for Prometheus text exposition, wrapping
// obs::ValidatePrometheusText as a CLI so CI can fail a pipeline when a
// live scrape is malformed:
//
//   curl -s http://127.0.0.1:9464/metrics | promlint
//   promlint metrics.prom
//
// Exit 0 when the input is valid; 1 with a diagnostic on stderr otherwise.

#include <cstdio>
#include <string>

#include "obs/export.h"

int main(int argc, char** argv) {
  std::string input;
  if (argc > 1) {
    FILE* f = std::fopen(argv[1], "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "promlint: cannot open %s\n", argv[1]);
      return 2;
    }
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) input.append(buf, n);
    std::fclose(f);
  } else {
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), stdin)) > 0)
      input.append(buf, n);
  }

  chrono::Status status = chrono::obs::ValidatePrometheusText(input);
  if (!status.ok()) {
    std::fprintf(stderr, "promlint: %s\n",
                 std::string(status.message()).c_str());
    return 1;
  }
  std::printf("promlint: ok (%zu bytes)\n", input.size());
  return 0;
}
