// chrono_trace — renders a binary event journal (serve_bench
// --journal-out) as Chrome trace-event JSON loadable in Perfetto or
// chrome://tracing, merging per-request stage timelines with the backend
// events (retries, timeouts, breaker transitions, stale serves, shed
// work) journaled around them:
//
//   chrono_trace serve.journal > timeline.json
//   chrono_trace serve.journal --out timeline.json
//   chrono_trace --validate scrape.json     # strict JSON check, exit 0/2
//
// Stage segments are reconstructed from the packed kRequest durations and
// tiled sequentially in pipeline order — the journal stores per-stage
// sums, not span offsets, so overlap inside one request is flattened (the
// live /traces.chrome endpoint renders exact offsets). Rows are grouped
// per client (one Chrome "thread" per client id). --validate runs the
// same strict RFC 8259 well-formedness check CI applies to /timeseries
// and /traces.chrome scrapes.
//
// Exit 0 on success, 2 on a malformed or unreadable input.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/journal.h"
#include "obs/trace.h"

using namespace chrono;

namespace {

void Usage() {
  std::printf(
      "chrono_trace — journal → Chrome trace-event JSON\n\n"
      "  chrono_trace FILE [--out FILE]\n"
      "  chrono_trace --validate FILE\n\n"
      "  FILE        binary journal written by serve_bench --journal-out\n"
      "  --out FILE  write the timeline JSON to FILE instead of stdout\n"
      "  --validate  check FILE is well-formed JSON (RFC 8259); exit 0/2\n");
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

/// One complete ("X") event. All names here are fixed internal strings;
/// no JSON escaping is required.
void AppendComplete(std::string* out, bool* first, const char* name,
                    const char* cat, uint64_t ts_us, uint64_t dur_us,
                    uint32_t tid) {
  if (!*first) out->push_back(',');
  *first = false;
  out->append("{\"name\":\"").append(name);
  out->append("\",\"cat\":\"").append(cat);
  out->append("\",\"ph\":\"X\",\"ts\":");
  AppendU64(out, ts_us);
  out->append(",\"dur\":");
  AppendU64(out, dur_us);
  out->append(",\"pid\":1,\"tid\":");
  AppendU64(out, tid);
  out->push_back('}');
}

/// One instant ("i") event with a single numeric arg.
void AppendInstant(std::string* out, bool* first, const char* name,
                   uint64_t ts_us, uint32_t tid, const char* arg_key,
                   uint64_t arg_value) {
  if (!*first) out->push_back(',');
  *first = false;
  out->append("{\"name\":\"").append(name);
  out->append("\",\"cat\":\"backend\",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
  AppendU64(out, ts_us);
  out->append(",\"pid\":1,\"tid\":");
  AppendU64(out, tid);
  out->append(",\"args\":{\"").append(arg_key).append("\":");
  AppendU64(out, arg_value);
  out->append("}}");
}

std::string JournalToChromeJson(const std::vector<obs::JournalEvent>& events) {
  std::string out;
  out.reserve(events.size() * 160 + 128);
  out.append("{\"traceEvents\":[");
  bool first = true;

  // One process, one row ("thread") per client id.
  std::set<uint32_t> clients;
  for (const obs::JournalEvent& e : events) clients.insert(e.client);
  if (!first || !clients.empty()) {
    out.append(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":"
        "{\"name\":\"chronocache\"}}");
    first = false;
  }
  for (uint32_t client : clients) {
    out.append(",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
    AppendU64(&out, client);
    out.append(",\"args\":{\"name\":\"client ");
    AppendU64(&out, client);
    out.append("\"}}");
  }

  for (const obs::JournalEvent& e : events) {
    switch (e.type) {
      case obs::JournalEventType::kRequest: {
        if (e.flags & obs::kJournalFlagNoLatency) break;
        const uint64_t total_us = obs::UnpackHi(e.c);
        const uint64_t start_us = e.ts_us > total_us ? e.ts_us - total_us : 0;
        const int outcome = e.flags & 0x3f;
        const char* name =
            outcome < obs::kTraceOutcomeCount
                ? obs::TraceOutcomeName(static_cast<obs::TraceOutcome>(outcome))
                : "request";
        AppendComplete(&out, &first, name, "request", start_us, total_us,
                       e.client);
        // The journal stores per-stage sums, not offsets: tile the stages
        // sequentially in pipeline order (flattens intra-request overlap).
        const uint64_t stage_us[] = {
            obs::UnpackLo(e.a), obs::UnpackHi(e.a), obs::UnpackLo(e.b),
            obs::UnpackHi(e.b), obs::UnpackLo(e.c)};
        uint64_t at = start_us;
        for (int s = 0; s < 5; ++s) {
          if (stage_us[s] == 0) continue;
          AppendComplete(&out, &first,
                         obs::StageName(static_cast<obs::Stage>(s)), "stage",
                         at, stage_us[s], e.client);
          at += stage_us[s];
        }
        break;
      }
      case obs::JournalEventType::kBackendRetry:
        AppendInstant(&out, &first, "retry", e.ts_us, e.client, "attempts",
                      e.a);
        break;
      case obs::JournalEventType::kBackendTimeout:
        AppendInstant(&out, &first, "attempt_timeout", e.ts_us, e.client,
                      "budget_us", e.a);
        break;
      case obs::JournalEventType::kBreakerTransition:
        AppendInstant(&out, &first, "breaker_state", e.ts_us, e.client,
                      "state", e.a);
        break;
      case obs::JournalEventType::kStaleServe:
        AppendInstant(&out, &first, "stale_serve", e.ts_us, e.client,
                      "age_us", e.a);
        break;
      case obs::JournalEventType::kBackendCoalesced:
        AppendInstant(&out, &first, "coalesced", e.ts_us, e.client,
                      "parked_before", e.a);
        break;
      case obs::JournalEventType::kShed:
        AppendInstant(&out, &first, "shed", e.ts_us, e.client, "kind", e.a);
        break;
      default:
        break;  // prefetch-lifecycle events are chrono_audit's domain
    }
  }
  out.append("],\"displayTimeUnit\":\"ms\"}");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string out_path;
  bool validate = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg == "--validate") {
      validate = true;
    } else if (arg == "--out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--out needs a file argument\n");
        return 2;
      }
      out_path = argv[++i];
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (path.empty()) {
    Usage();
    return 2;
  }

  if (validate) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "chrono_trace: cannot read %s\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string doc = text.str();
    Status status = ValidateJson(doc);
    if (!status.ok()) {
      std::fprintf(stderr, "chrono_trace: %s: %s\n", path.c_str(),
                   status.ToString().c_str());
      return 2;
    }
    std::printf("%s: valid JSON (%zu bytes)\n", path.c_str(), doc.size());
    return 0;
  }

  Result<std::vector<obs::JournalEvent>> events = obs::ReadJournalFile(path);
  if (!events.ok()) {
    std::fprintf(stderr, "chrono_trace: %s\n",
                 events.status().ToString().c_str());
    return 2;
  }
  std::string doc = JournalToChromeJson(*events);
  if (out_path.empty()) {
    std::fwrite(doc.data(), 1, doc.size(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "chrono_trace: cannot write %s\n", out_path.c_str());
    return 2;
  }
  out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  out.close();
  std::printf("wrote %s (%zu bytes, %zu events)\n", out_path.c_str(),
              doc.size(), events->size());
  return 0;
}
