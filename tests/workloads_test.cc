// Workload generators: population shapes, transaction programs, SQL
// validity of every generated statement against the real engine.

#include <gtest/gtest.h>

#include <set>

#include "db/database.h"
#include "workloads/auctionmark.h"
#include "workloads/seats.h"
#include "workloads/tpce.h"
#include "workloads/wikipedia.h"

namespace chrono::workloads {
namespace {

using sql::ResultSet;
using sql::Value;

TEST(Subst, ReplacesPositionalArgs) {
  EXPECT_EQ(Subst("a = $0 AND b = $1", {"1", "'x'"}), "a = 1 AND b = 'x'");
  EXPECT_EQ(Subst("$0$0", {"z"}), "zz");
  EXPECT_EQ(Subst("no args", {}), "no args");
}

TEST(Lit, QuotesStrings) {
  EXPECT_EQ(Lit(std::string("it's")), "'it''s'");
  EXPECT_EQ(Lit(int64_t{42}), "42");
  EXPECT_EQ(Lit(Value::Double(1.5)), "1.5");
}

TEST(LoopTransaction, IteratesDriverRows) {
  LoopTransaction tx(
      "t", "DRIVER",
      {{"per-row $0", {"col"}}},
      {}, {"TRAIL"});
  EXPECT_EQ(*tx.Next(nullptr), "DRIVER");
  ResultSet rs({"col"});
  rs.AddRow({Value::Int(1)});
  rs.AddRow({Value::Int(2)});
  EXPECT_EQ(*tx.Next(&rs), "per-row 1");
  EXPECT_EQ(*tx.Next(nullptr), "per-row 2");
  EXPECT_EQ(*tx.Next(nullptr), "TRAIL");
  EXPECT_FALSE(tx.Next(nullptr).has_value());
}

TEST(LoopTransaction, LoopConstantsAppended) {
  LoopTransaction tx("t", "DRIVER", {{"q $0 $1", {"col"}}},
                     {"'CONST'"});
  (void)tx.Next(nullptr);
  ResultSet rs({"col"});
  rs.AddRow({Value::Int(7)});
  EXPECT_EQ(*tx.Next(&rs), "q 7 'CONST'");
}

TEST(LoopTransaction, EmptyDriverSkipsLoop) {
  LoopTransaction tx("t", "DRIVER", {{"q $0", {"col"}}}, {}, {"TRAIL"});
  (void)tx.Next(nullptr);
  ResultSet rs({"col"});
  EXPECT_EQ(*tx.Next(&rs), "TRAIL");
  EXPECT_FALSE(tx.Next(nullptr).has_value());
}

TEST(LoopTransaction, MultiplePerRowQueries) {
  LoopTransaction tx("t", "DRIVER", {{"a $0", {"c"}}, {"b $0", {"c"}}});
  (void)tx.Next(nullptr);
  ResultSet rs({"c"});
  rs.AddRow({Value::Int(1)});
  rs.AddRow({Value::Int(2)});
  EXPECT_EQ(*tx.Next(&rs), "a 1");
  EXPECT_EQ(*tx.Next(nullptr), "b 1");
  EXPECT_EQ(*tx.Next(nullptr), "a 2");
  EXPECT_EQ(*tx.Next(nullptr), "b 2");
  EXPECT_FALSE(tx.Next(nullptr).has_value());
}

// Every workload must (a) populate without error, (b) generate transactions
// whose every statement parses and executes on the engine.
class WorkloadParam
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Workload> Make() {
    std::string name = GetParam();
    if (name == "tpce") {
      TpceWorkload::Config c;
      c.customers = 30;
      c.securities = 60;
      c.watch_lists = 20;
      c.trades = 100;
      return std::make_unique<TpceWorkload>(c);
    }
    if (name == "wikipedia") {
      WikipediaWorkload::Config c;
      c.pages = 100;
      c.users = 100;
      return std::make_unique<WikipediaWorkload>(c);
    }
    if (name == "seats") {
      SeatsWorkload::Config c;
      c.customers = 50;
      c.flights = 60;
      c.routes = 12;
      return std::make_unique<SeatsWorkload>(c);
    }
    AuctionMarkWorkload::Config c;
    c.users = 40;
    c.items = 200;
    return std::make_unique<AuctionMarkWorkload>(c);
  }
};

TEST_P(WorkloadParam, PopulatesTables) {
  db::Database db;
  auto workload = Make();
  workload->Populate(&db);
  EXPECT_GT(db.catalog()->table_count(), 3u);
  for (const auto& name : db.catalog()->table_names()) {
    SCOPED_TRACE(name);
    EXPECT_NE(db.catalog()->FindTable(name), nullptr);
  }
}

TEST_P(WorkloadParam, AllGeneratedStatementsExecute) {
  db::Database db;
  auto workload = Make();
  workload->Populate(&db);
  Rng rng(42);
  int statements = 0;
  for (int t = 0; t < 60; ++t) {
    auto tx = workload->NextTransaction(&rng);
    ASSERT_NE(tx, nullptr);
    const ResultSet* prev = nullptr;
    ResultSet last;
    int guard = 0;
    while (auto sql = tx->Next(prev)) {
      ASSERT_LT(++guard, 500) << "transaction runs too long: " << tx->name();
      auto outcome = db.ExecuteText(*sql);
      ASSERT_TRUE(outcome.ok())
          << tx->name() << ": " << *sql << " -> "
          << outcome.status().ToString();
      last = outcome->result;
      prev = &last;
      ++statements;
    }
  }
  EXPECT_GT(statements, 100);
}

TEST_P(WorkloadParam, DeterministicForSeed) {
  auto workload_a = Make();
  auto workload_b = Make();
  Rng rng_a(7);
  Rng rng_b(7);
  for (int i = 0; i < 20; ++i) {
    auto tx_a = workload_a->NextTransaction(&rng_a);
    auto tx_b = workload_b->NextTransaction(&rng_b);
    EXPECT_STREQ(tx_a->name(), tx_b->name());
    EXPECT_EQ(tx_a->Next(nullptr), tx_b->Next(nullptr));
  }
}

TEST_P(WorkloadParam, MixesReadAndWriteTransactions) {
  auto workload = Make();
  Rng rng(3);
  std::set<std::string> names;
  for (int i = 0; i < 200; ++i) {
    names.insert(workload->NextTransaction(&rng)->name());
  }
  // Wikipedia is 92% one transaction by design [18]; the rest are mixes.
  size_t min_kinds = std::string(GetParam()) == "wikipedia" ? 2u : 4u;
  EXPECT_GE(names.size(), min_kinds);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadParam,
                         ::testing::Values("tpce", "wikipedia", "seats",
                                           "auctionmark"));

TEST(TpceWorkload, MarketWatchHasPerLoopConstant) {
  // The Fig. 4 pattern: the daily_market query carries a dm_date constant
  // that is not present in the driver's result set.
  TpceWorkload workload{TpceWorkload::Config{}};
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    auto tx = workload.NextTransaction(&rng);
    if (std::string(tx->name()) != "MarketWatch") continue;
    auto driver = tx->Next(nullptr);
    ASSERT_TRUE(driver.has_value());
    EXPECT_NE(driver->find("watch_item"), std::string::npos);
    ResultSet rs({"wi_s_symb"});
    rs.AddRow({Value::String("SYM1")});
    auto q2 = tx->Next(&rs);
    ASSERT_TRUE(q2.has_value());
    EXPECT_NE(q2->find("security"), std::string::npos);
    auto q3 = tx->Next(nullptr);
    ASSERT_TRUE(q3.has_value());
    EXPECT_NE(q3->find("dm_date ="), std::string::npos);
    return;
  }
  FAIL() << "no MarketWatch transaction drawn";
}

TEST(WikipediaWorkload, ZipfSkewsPageChoice) {
  WikipediaWorkload workload{[] {
    WikipediaWorkload::Config c;
    c.pages = 1000;
    return c;
  }()};
  Rng rng(5);
  std::map<std::string, int> counts;
  for (int i = 0; i < 500; ++i) {
    auto tx = workload.NextTransaction(&rng);
    auto driver = tx->Next(nullptr);
    ASSERT_TRUE(driver.has_value());
    counts[*driver]++;
  }
  int max_count = 0;
  for (const auto& [sql, n] : counts) max_count = std::max(max_count, n);
  // Zipf(1): the hottest page dominates far beyond uniform (500/1000).
  EXPECT_GT(max_count, 10);
}

TEST(SeatsWorkload, CustomerLookupUsesMultipleAccessPaths) {
  SeatsWorkload workload{SeatsWorkload::Config{}};
  Rng rng(2);
  std::set<std::string> predicates;
  for (int i = 0; i < 400; ++i) {
    auto tx = workload.NextTransaction(&rng);
    if (std::string(tx->name()) != "CustomerLookup") continue;
    auto driver = tx->Next(nullptr);
    if (driver->find("c_id =") != std::string::npos) predicates.insert("id");
    if (driver->find("c_ff_number =") != std::string::npos) {
      predicates.insert("ff");
    }
    if (driver->find("c_login =") != std::string::npos) {
      predicates.insert("login");
    }
  }
  EXPECT_EQ(predicates.size(), 3u);  // all three conditional paths (§6.4)
}

TEST(AuctionMarkWorkload, CloseAuctionsHasAggregateWithConstant) {
  AuctionMarkWorkload workload{AuctionMarkWorkload::Config{}};
  Rng rng(4);
  for (int i = 0; i < 400; ++i) {
    auto tx = workload.NextTransaction(&rng);
    if (std::string(tx->name()) != "CloseAuctions") continue;
    (void)tx->Next(nullptr);
    ResultSet rs({"i_id", "i_seller"});
    rs.AddRow({Value::Int(1), Value::Int(2)});
    auto q2 = tx->Next(&rs);
    ASSERT_TRUE(q2.has_value());
    EXPECT_NE(q2->find("max(b_amount)"), std::string::npos);
    auto q3 = tx->Next(nullptr);
    ASSERT_TRUE(q3.has_value());
    EXPECT_NE(q3->find("avg(f_rating)"), std::string::npos);
    EXPECT_NE(q3->find("f_date >="), std::string::npos);
    return;
  }
  FAIL() << "no CloseAuctions transaction drawn";
}

}  // namespace
}  // namespace chrono::workloads
