// End-to-end experiments: full workloads through the middleware stack in
// virtual time. These are the highest-level invariants: results stay
// correct under every system mode, and ChronoCache's predictive caching
// actually reduces response times relative to LRU.

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "workloads/auctionmark.h"
#include "workloads/seats.h"
#include "workloads/tpce.h"
#include "workloads/wikipedia.h"

namespace chrono {
namespace {

using core::SystemMode;
using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::RunExperiment;

ExperimentConfig SmallConfig(SystemMode mode) {
  ExperimentConfig config;
  config.clients = 4;
  config.warmup = 10 * kMicrosPerSecond;
  config.duration = 20 * kMicrosPerSecond;
  config.middleware.mode = mode;
  return config;
}

std::unique_ptr<workloads::Workload> SmallTpce() {
  workloads::TpceWorkload::Config c;
  c.customers = 40;
  c.securities = 80;
  c.watch_lists = 40;
  c.watch_items_per_list = 8;
  c.trades = 300;
  return std::make_unique<workloads::TpceWorkload>(c);
}

TEST(EndToEnd, TpceRunsWithoutErrorsUnderAllModes) {
  for (SystemMode mode :
       {SystemMode::kLru, SystemMode::kApollo, SystemMode::kScalpelE,
        SystemMode::kScalpelCC, SystemMode::kChrono}) {
    ExperimentResult result = RunExperiment(SmallTpce, SmallConfig(mode));
    EXPECT_EQ(result.errors, 0u)
        << core::SystemModeName(mode) << ": " << result.first_error;
    EXPECT_GT(result.queries_measured, 100u) << core::SystemModeName(mode);
  }
}

TEST(EndToEnd, ChronoBeatsLruOnTpce) {
  ExperimentResult lru = RunExperiment(SmallTpce, SmallConfig(SystemMode::kLru));
  ExperimentResult chrono_result =
      RunExperiment(SmallTpce, SmallConfig(SystemMode::kChrono));
  EXPECT_EQ(chrono_result.errors, 0u) << chrono_result.first_error;
  // The headline claim (§6.1): large response-time reduction from
  // predictive combining. At this scale demand a clear win.
  EXPECT_LT(chrono_result.avg_response_ms, lru.avg_response_ms * 0.8)
      << "chrono=" << chrono_result.avg_response_ms
      << "ms lru=" << lru.avg_response_ms << "ms";
  EXPECT_GT(chrono_result.cache_hit_rate, lru.cache_hit_rate);
  EXPECT_GT(chrono_result.metrics.remote_combined, 0u);
}

TEST(EndToEnd, WikipediaRunsCleanlyWithChrono) {
  auto make = [] {
    workloads::WikipediaWorkload::Config c;
    c.pages = 300;
    c.users = 300;
    return std::make_unique<workloads::WikipediaWorkload>(c);
  };
  ExperimentResult result = RunExperiment(make, SmallConfig(SystemMode::kChrono));
  EXPECT_EQ(result.errors, 0u) << result.first_error;
  EXPECT_GT(result.cache_hit_rate, 0.0);
}

TEST(EndToEnd, SeatsRunsCleanlyWithChrono) {
  auto make = [] {
    workloads::SeatsWorkload::Config c;
    c.customers = 80;
    c.flights = 120;
    c.routes = 20;
    return std::make_unique<workloads::SeatsWorkload>(c);
  };
  ExperimentResult result = RunExperiment(make, SmallConfig(SystemMode::kChrono));
  EXPECT_EQ(result.errors, 0u) << result.first_error;
}

TEST(EndToEnd, AuctionMarkRunsCleanlyWithChrono) {
  auto make = [] {
    workloads::AuctionMarkWorkload::Config c;
    c.users = 80;
    c.items = 400;
    return std::make_unique<workloads::AuctionMarkWorkload>(c);
  };
  ExperimentResult result = RunExperiment(make, SmallConfig(SystemMode::kChrono));
  EXPECT_EQ(result.errors, 0u) << result.first_error;
}

TEST(EndToEnd, MultiNodeDeploymentRuns) {
  ExperimentConfig config = SmallConfig(SystemMode::kChrono);
  config.nodes = 3;
  config.clients = 6;
  ExperimentResult result = RunExperiment(SmallTpce, config);
  EXPECT_EQ(result.errors, 0u) << result.first_error;
}

// Determinism: the virtual-time simulation is bit-reproducible.
TEST(EndToEnd, DeterministicAcrossRuns) {
  ExperimentResult a = RunExperiment(SmallTpce, SmallConfig(SystemMode::kChrono));
  ExperimentResult b = RunExperiment(SmallTpce, SmallConfig(SystemMode::kChrono));
  EXPECT_EQ(a.queries_measured, b.queries_measured);
  EXPECT_DOUBLE_EQ(a.avg_response_ms, b.avg_response_ms);
  EXPECT_EQ(a.db_requests, b.db_requests);
}

}  // namespace
}  // namespace chrono
