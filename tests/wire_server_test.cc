// End-to-end and robustness tests for the TCP wire frontend (DESIGN.md
// §13): handshake and query round trips over real sockets, pipelined
// out-of-order completion, concurrent connections, admission control,
// idle timeouts, malformed-frame close semantics, abrupt disconnects, and
// the graceful-drain journal contract (recorded == drained). The CI ASan
// and TSan jobs run this file — the epoll loop, worker completions and
// shutdown path must all be clean under both.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "net/socket_util.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "runtime/server.h"
#include "wire/protocol.h"
#include "wire/wire_client.h"
#include "wire/wire_server.h"

namespace chrono::wire {
namespace {

class WireServerTest : public ::testing::Test {
 protected:
  WireServerTest() {
    auto setup = [&](const std::string& sql) {
      auto r = db_.ExecuteText(sql);
      EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    };
    setup("CREATE TABLE t (id INT, v TEXT)");
    for (int i = 0; i < 50; ++i) {
      setup("INSERT INTO t (id, v) VALUES (" + std::to_string(i) + ", 'v" +
            std::to_string(i) + "')");
    }
  }

  /// Starts a ChronoServer + WireServer pair on an ephemeral port.
  void StartNode(WireServer::Options wire_options = {}) {
    runtime::ServerConfig config;
    config.workers = 4;
    config.registry = &registry_;
    server_ = std::make_unique<runtime::ChronoServer>(&db_, config);
    wire_options.port = 0;
    wire_ = std::make_unique<WireServer>(server_.get(), wire_options);
    ASSERT_TRUE(wire_->Start().ok());
    ASSERT_GT(wire_->port(), 0);
  }

  void StopNode() {
    if (wire_) wire_->Stop();
    if (server_) server_->Shutdown();
  }

  ~WireServerTest() override { StopNode(); }

  /// Stats counters are bumped by the IO thread after the client has
  /// already observed the socket-level effect (Error frame, EOF), so
  /// asserts on them must poll instead of reading once.
  template <typename Pred>
  bool WaitFor(Pred pred, int timeout_ms = 5000) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
  }

  db::Database db_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<runtime::ChronoServer> server_;
  std::unique_ptr<WireServer> wire_;
};

TEST_F(WireServerTest, QueryOverSocketMatchesDirectExecution) {
  StartNode();
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", wire_->port(), /*client_id=*/7)
                  .ok());
  for (int i = 0; i < 10; ++i) {
    std::string sql = "SELECT v FROM t WHERE id = " + std::to_string(i);
    Result<sql::ResultSet> via_wire = client.Query(sql);
    auto direct = db_.ExecuteText(sql);
    ASSERT_TRUE(via_wire.ok()) << via_wire.status().ToString();
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(*via_wire, direct->result) << sql;
  }
  EXPECT_TRUE(client.Ping().ok());
  client.Close();
}

TEST_F(WireServerTest, ServerErrorsTravelAsErrorFrames) {
  StartNode();
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", wire_->port(), 1).ok());
  Result<sql::ResultSet> bad = client.Query("SELECT FROM WHERE !!");
  ASSERT_FALSE(bad.ok());
  // The connection survives an execution error — only protocol errors
  // close it.
  Result<sql::ResultSet> good = client.Query("SELECT v FROM t WHERE id = 1");
  EXPECT_TRUE(good.ok()) << good.status().ToString();
}

TEST_F(WireServerTest, PipelinedResponsesMatchByRequestId) {
  StartNode();
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", wire_->port(), 2).ok());
  constexpr int kDepth = 32;
  std::map<uint64_t, int> sent;  // request id -> query key
  for (int i = 0; i < kDepth; ++i) {
    uint64_t id = 0;
    ASSERT_TRUE(client
                    .SendQuery("SELECT v FROM t WHERE id = " +
                                   std::to_string(i % 50),
                               &id)
                    .ok());
    sent[id] = i % 50;
  }
  for (int i = 0; i < kDepth; ++i) {
    Result<WireClient::Response> response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    auto it = sent.find(response->request_id);
    ASSERT_NE(it, sent.end()) << "unknown id " << response->request_id;
    ASSERT_TRUE(response->result.ok());
    ASSERT_EQ(response->result->row_count(), 1u);
    EXPECT_EQ(response->result->row(0)[0].AsString(),
              "v" + std::to_string(it->second));
    sent.erase(it);
  }
  EXPECT_TRUE(sent.empty());
}

TEST_F(WireServerTest, ManyConcurrentConnections) {
  StartNode();
  constexpr int kConns = 32;
  constexpr int kQueriesEach = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kConns);
  for (int c = 0; c < kConns; ++c) {
    threads.emplace_back([&, c] {
      WireClient client;
      if (!client.Connect("127.0.0.1", wire_->port(), 100 + c).ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kQueriesEach; ++i) {
        auto result = client.Query("SELECT v FROM t WHERE id = " +
                                   std::to_string((c + i) % 50));
        if (!result.ok() || result->row_count() != 1) ++failures;
      }
      client.Close();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  WireServer::Stats stats = wire_->stats();
  EXPECT_GE(stats.accepted, static_cast<uint64_t>(kConns));
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_GE(stats.requests, static_cast<uint64_t>(kConns * kQueriesEach));
}

TEST_F(WireServerTest, MalformedMagicGetsErrorFrameThenClose) {
  StartNode();
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", wire_->port(), 3).ok());
  std::string garbage = "XXXXGARBAGEGARBAGEGARBAGE";
  ASSERT_TRUE(client.SendRaw(garbage.data(), garbage.size()).ok());
  Result<WireClient::Response> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->result.ok());  // the protocol Error frame
  // After the Error frame the server closes the connection.
  Result<WireClient::Response> eof = client.ReadResponse(2000);
  EXPECT_FALSE(eof.ok());
  EXPECT_TRUE(WaitFor([&] { return wire_->stats().protocol_errors >= 1; }));
  EXPECT_TRUE(WaitFor([&] { return wire_->stats().closed_by_error >= 1; }));
}

TEST_F(WireServerTest, OversizedFrameIsRejected) {
  WireServer::Options options;
  options.max_frame_bytes = 1 << 16;
  StartNode(options);
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", wire_->port(), 4).ok());
  // Hand-build a header that claims a 1 GiB payload.
  std::string huge = EncodeQuery(9, "x");
  uint32_t lying_len = 1u << 30;
  std::memcpy(&huge[16], &lying_len, sizeof(lying_len));
  ASSERT_TRUE(client.SendRaw(huge.data(), huge.size()).ok());
  Result<WireClient::Response> response = client.ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->result.ok());
  EXPECT_FALSE(client.ReadResponse(2000).ok());  // closed
}

TEST_F(WireServerTest, FirstFrameMustBeHello) {
  StartNode();
  Result<int> fd = net::ConnectTcp("127.0.0.1", wire_->port(), 2000);
  ASSERT_TRUE(fd.ok());
  std::string query = EncodeQuery(1, "SELECT 1");
  ASSERT_TRUE(net::SendAll(*fd, query.data(), query.size()));
  // Expect an Error frame, then EOF.
  char buf[4096];
  std::string got;
  for (;;) {
    if (net::PollReadable(*fd, 2000) != 1) break;
    ssize_t n = ::read(*fd, buf, sizeof(buf));
    if (n <= 0) break;
    got.append(buf, static_cast<size_t>(n));
  }
  ::close(*fd);
  Frame frame;
  size_t consumed = 0;
  Status error;
  ASSERT_EQ(DecodeFrame(got.data(), got.size(), 0, &frame, &consumed,
                        &error),
            DecodeStatus::kFrame);
  EXPECT_EQ(frame.header.type, MessageType::kError);
}

TEST_F(WireServerTest, AbruptDisconnectDoesNotKillTheServer) {
  StartNode();
  for (int round = 0; round < 8; ++round) {
    Result<int> fd = net::ConnectTcp("127.0.0.1", wire_->port(), 2000);
    ASSERT_TRUE(fd.ok());
    // Half a header, then vanish.
    std::string partial = EncodePing(1).substr(0, 9);
    net::SendAll(*fd, partial.data(), partial.size());
    ::close(*fd);
  }
  // Also vanish mid-pipeline with requests in flight.
  {
    WireClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", wire_->port(), 5).ok());
    for (int i = 0; i < 16; ++i) {
      uint64_t id;
      ASSERT_TRUE(client.SendQuery("SELECT v FROM t WHERE id = 1", &id).ok());
    }
    ::close(client.fd());  // bypass the clean Goodbye in Close()
  }
  // The server is still healthy for new clients.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", wire_->port(), 6).ok());
  Result<sql::ResultSet> result = client.Query("SELECT v FROM t WHERE id = 2");
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

TEST_F(WireServerTest, AdmissionCapRejectsWithUnavailable) {
  WireServer::Options options;
  options.max_connections = 2;
  StartNode(options);
  WireClient a, b, c;
  ASSERT_TRUE(a.Connect("127.0.0.1", wire_->port(), 10).ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", wire_->port(), 11).ok());
  Status third = c.Connect("127.0.0.1", wire_->port(), 12);
  EXPECT_FALSE(third.ok());
  EXPECT_TRUE(WaitFor([&] { return wire_->stats().rejected >= 1; }));
  // Capacity frees up once a connection leaves.
  a.Close();
  EXPECT_TRUE(WaitFor([&] { return wire_->stats().active < 2; }));
  WireClient d;
  EXPECT_TRUE(d.Connect("127.0.0.1", wire_->port(), 13).ok());
}

TEST_F(WireServerTest, IdleConnectionsAreReaped) {
  WireServer::Options options;
  options.idle_timeout_ms = 100;
  StartNode(options);
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", wire_->port(), 20).ok());
  // Wait past the timeout plus a sweep tick.
  EXPECT_TRUE(WaitFor([&] { return wire_->stats().closed_by_idle >= 1; }));
  EXPECT_FALSE(client.Ping(1000).ok());
}

TEST_F(WireServerTest, GracefulDrainKeepsJournalExact) {
  StartNode();
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", wire_->port(), 30).ok());
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(client.Query("SELECT v FROM t WHERE id = " +
                             std::to_string(i % 50))
                    .ok());
  }
  // Stop the frontend first (drains in-flight work), then the runtime.
  wire_->Stop();
  server_->Shutdown();
  obs::EventJournal* journal = server_->journal();
  ASSERT_NE(journal, nullptr);
  journal->Drain();
  EXPECT_EQ(journal->events_recorded(), journal->events_drained());
  EXPECT_EQ(journal->events_dropped(), 0u);
}

TEST_F(WireServerTest, StatsJsonAndWireMetricsExposed) {
  StartNode();
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", wire_->port(), 40).ok());
  ASSERT_TRUE(client.Query("SELECT v FROM t WHERE id = 3").ok());
  std::string json = wire_->StatsJson();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"accepted\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99_latency_us\":"), std::string::npos);
  // The registry carries the chrono_wire_* families.
  auto snapshot = registry_.Snapshot();
  EXPECT_NE(snapshot.Find("chrono_wire_connections_accepted_total"),
            nullptr);
  EXPECT_NE(snapshot.Find("chrono_wire_bytes_total",
                          {{"direction", "in"}}),
            nullptr);
  EXPECT_NE(snapshot.Find("chrono_wire_request_latency_us"), nullptr);
}

TEST_F(WireServerTest, WireRequestsPublishTilingEndToEndTimelines) {
  StartNode();
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", wire_->port(), 60).ok());
  ASSERT_TRUE(client.Query("SELECT v FROM t WHERE id = 9").ok());
  client.Close();

  // The trace is published only after the response bytes reach the
  // kernel, so poll the ring for it.
  ASSERT_NE(server_->traces(), nullptr);
  std::shared_ptr<const obs::RequestTrace> trace;
  ASSERT_TRUE(WaitFor([&] {
    for (const auto& t : server_->traces()->Snapshot()) {
      for (const obs::TraceSpan& s : t->spans) {
        if (s.stage == obs::Stage::kResponseFlush) {
          trace = t;
          return true;
        }
      }
    }
    return false;
  }));

  // Exactly one span per wire stage, tiling the trace with no gaps: each
  // starts where the previous ended and the last ends at total_us — the
  // invariant the CI chaos job asserts on scraped tail traces.
  const obs::Stage wire_stages[] = {
      obs::Stage::kWireDecode, obs::Stage::kQueueWait, obs::Stage::kExecute,
      obs::Stage::kCompletionWait, obs::Stage::kResponseFlush};
  uint64_t cursor = 0;
  for (obs::Stage stage : wire_stages) {
    const obs::TraceSpan* found = nullptr;
    for (const obs::TraceSpan& s : trace->spans) {
      if (s.stage == stage) {
        ASSERT_EQ(found, nullptr) << "duplicate " << obs::StageName(stage);
        found = &s;
      }
    }
    ASSERT_NE(found, nullptr) << "missing " << obs::StageName(stage);
    EXPECT_EQ(found->start_us, cursor) << obs::StageName(stage);
    cursor = found->start_us + found->dur_us;
  }
  EXPECT_EQ(cursor, trace->total_us);
  EXPECT_EQ(trace->client, 60u);
  EXPECT_FALSE(trace->forced);

  // The pipeline stages ride inside the execute span.
  const obs::TraceSpan* execute = nullptr;
  const obs::TraceSpan* analyze = nullptr;
  for (const obs::TraceSpan& s : trace->spans) {
    if (s.stage == obs::Stage::kExecute) execute = &s;
    if (s.stage == obs::Stage::kAnalyze) analyze = &s;
  }
  ASSERT_NE(analyze, nullptr);
  EXPECT_GE(analyze->start_us, execute->start_us);
  EXPECT_LE(analyze->start_us + analyze->dur_us,
            execute->start_us + execute->dur_us);

  // The wire stages also feed their per-stage histograms.
  auto snapshot = registry_.Snapshot();
  const obs::MetricSnapshot* decode = snapshot.Find(
      "chrono_stage_latency_ns", {{"stage", "wire_decode"}});
  ASSERT_NE(decode, nullptr);
  EXPECT_GE(decode->histogram.count, 1u);
}

TEST_F(WireServerTest, TracedFlagForcesTailRetention) {
  StartNode();
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", wire_->port(), 61).ok());
  // A sub-microsecond cache hit would never enter the tail on merit; the
  // kFlagTraced bit forces it in.
  ASSERT_TRUE(client.Query("SELECT v FROM t WHERE id = 5").ok());
  ASSERT_TRUE(
      client.Query("SELECT v FROM t WHERE id = 5", 10'000, kFlagTraced).ok());
  ASSERT_NE(server_->tail(), nullptr);
  ASSERT_TRUE(WaitFor([&] {
    for (const auto& t : server_->tail()->Snapshot()) {
      if (t->forced) return true;
    }
    return false;
  }));
  // Only the flagged request is forced.
  int forced = 0;
  for (const auto& t : server_->tail()->Snapshot()) {
    forced += t->forced ? 1 : 0;
  }
  EXPECT_EQ(forced, 1);
}

TEST_F(WireServerTest, StopWithIdleConnectionsSendsGoodbye) {
  StartNode();
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", wire_->port(), 50).ok());
  std::thread stopper([&] { wire_->Stop(); });
  Result<WireClient::Response> response = client.ReadResponse(5000);
  stopper.join();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->goodbye);
}

}  // namespace
}  // namespace chrono::wire
