#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/json.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/string_util.h"

namespace chrono {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(Status, AllCodesHaveNames) {
  for (auto code : {Status::Code::kInvalidArgument, Status::Code::kNotFound,
                    Status::Code::kParseError, Status::Code::kExecutionError,
                    Status::Code::kUnsupported, Status::Code::kInternal}) {
    Status s = [&] {
      switch (code) {
        case Status::Code::kInvalidArgument: return Status::InvalidArgument("x");
        case Status::Code::kNotFound: return Status::NotFound("x");
        case Status::Code::kParseError: return Status::ParseError("x");
        case Status::Code::kExecutionError: return Status::ExecutionError("x");
        case Status::Code::kUnsupported: return Status::Unsupported("x");
        default: return Status::Internal("x");
      }
    }();
    EXPECT_NE(s.ToString().find(':'), std::string::npos);
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

Result<int> Doubled(Result<int> in) {
  CHRONO_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(Status::Internal("boom")).ok());
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, WeightedRespectsZeroWeight) {
  Rng rng(7);
  std::vector<double> weights = {1.0, 0.0, 1.0};
  for (int i = 0; i < 500; ++i) EXPECT_NE(rng.NextWeighted(weights), 1u);
}

TEST(Rng, BoolProbabilityRoughlyHolds) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.25)) ++hits;
  }
  EXPECT_NEAR(hits, 2500, 200);
}

TEST(Zipf, RankZeroMostPopular) {
  Rng rng(7);
  ZipfGenerator zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Next(&rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
  // Zipf(1): p(0)/p(9) = 10.
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[9], 10.0, 4.0);
}

TEST(Zipf, CoversFullRange) {
  Rng rng(7);
  ZipfGenerator zipf(10, 1.0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(zipf.Next(&rng));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Stats, MeanAndStddev) {
  SampleStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Stddev(), 2.138, 0.01);
  EXPECT_EQ(s.Min(), 2.0);
  EXPECT_EQ(s.Max(), 9.0);
}

TEST(Stats, Percentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_NEAR(s.Percentile(0.5), 50.5, 0.01);
  EXPECT_NEAR(s.Percentile(0.99), 99.01, 0.01);
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 100.0);
}

TEST(Stats, ConfidenceIntervalSmallSample) {
  SampleStats s;
  // Five runs, as the paper uses. t(4) = 2.776.
  for (double x : {10.0, 12.0, 11.0, 9.0, 13.0}) s.Add(x);
  double ci = s.ConfidenceInterval95();
  EXPECT_NEAR(ci, 2.776 * s.Stddev() / std::sqrt(5.0), 1e-9);
}

TEST(Stats, EmptySafe) {
  SampleStats s;
  EXPECT_EQ(s.Mean(), 0);
  EXPECT_EQ(s.ConfidenceInterval95(), 0);
  EXPECT_EQ(s.Percentile(0.5), 0);
}

TEST(StringUtil, Fnv1aStableAndDistinct) {
  EXPECT_EQ(Fnv1aHash("abc"), Fnv1aHash("abc"));
  EXPECT_NE(Fnv1aHash("abc"), Fnv1aHash("abd"));
  EXPECT_NE(Fnv1aHash(""), Fnv1aHash("a"));
}

TEST(StringUtil, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtil, CaseHelpers) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("from"), "FROM");
  EXPECT_TRUE(EqualsIgnoreCase("WHERE", "where"));
  EXPECT_FALSE(EqualsIgnoreCase("WHERE", "wher"));
}

// ---- ValidateJson -------------------------------------------------------

TEST(ValidateJson, AcceptsEveryValueKind) {
  for (const char* doc :
       {"{}", "[]", "null", "true", "false", "0", "-1.5e3", "\"s\"",
        "{\"a\":[1,2,{\"b\":null}],\"c\":\"\\u00e9\\n\"}",
        "  [ 1 , 2 ]  ", "1e-300", "{\"nested\":{\"deep\":[[[]]]}}"}) {
    Status s = ValidateJson(doc);
    EXPECT_TRUE(s.ok()) << doc << ": " << s.ToString();
  }
}

TEST(ValidateJson, RejectsStructuralViolations) {
  for (const char* doc :
       {"", "{", "}", "[1,]", "{\"a\":}", "{\"a\" 1}", "{a:1}", "[1 2]",
        "{} {}", "{\"a\":1} trailing", "nul", "TRUE", "'single'",
        "{\"a\":1,}", "[,1]"}) {
    EXPECT_FALSE(ValidateJson(doc).ok()) << doc;
  }
}

TEST(ValidateJson, EnforcesNumberAndStringGrammar) {
  // Leading zeros, bare dots/exponents, and lonely minus are not numbers.
  for (const char* doc : {"01", "-", "1.", ".5", "1e", "+1", "0x10"}) {
    EXPECT_FALSE(ValidateJson(doc).ok()) << doc;
  }
  // Bad escapes, unterminated strings, raw control characters.
  for (const char* doc :
       {"\"\\q\"", "\"unterminated", "\"\\u12g4\"", "\"tab\there\""}) {
    EXPECT_FALSE(ValidateJson(doc).ok()) << doc;
  }
}

TEST(ValidateJson, ReportsTheByteOffsetOfTheFirstViolation) {
  Status s = ValidateJson("[1, x]");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("4"), std::string::npos) << s.ToString();
}

}  // namespace
}  // namespace chrono
