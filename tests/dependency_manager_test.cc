#include <gtest/gtest.h>

#include "core/dependency_manager.h"

namespace chrono::core {
namespace {

DependencyGraph Chain(TemplateId src, TemplateId dst) {
  DependencyGraph g;
  g.nodes = {src, dst};
  g.param_counts[src] = 1;
  g.param_counts[dst] = 1;
  g.edges.push_back({src, dst, {{"col", 0}}});
  g.Normalize();
  return g;
}

TEST(DependencyManager, AddAndFire) {
  DependencyManager manager;
  ASSERT_TRUE(manager.AddGraph(Chain(1, 2)));
  EXPECT_EQ(manager.graph_count(), 1u);
  auto ready = manager.MarkTextAvail(1);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_TRUE(ready[0]->ContainsNode(2));
}

TEST(DependencyManager, ReArmsAfterFiring) {
  DependencyManager manager;
  ASSERT_TRUE(manager.AddGraph(Chain(1, 2)));
  EXPECT_EQ(manager.MarkTextAvail(1).size(), 1u);
  EXPECT_EQ(manager.MarkTextAvail(1).size(), 1u);  // fires again
}

TEST(DependencyManager, NonDependencyArrivalDoesNotFire) {
  DependencyManager manager;
  ASSERT_TRUE(manager.AddGraph(Chain(1, 2)));
  EXPECT_TRUE(manager.MarkTextAvail(2).empty());  // predicted node
  EXPECT_TRUE(manager.MarkTextAvail(99).empty());
}

TEST(DependencyManager, ExactDuplicateDiscarded) {
  DependencyManager manager;
  ASSERT_TRUE(manager.AddGraph(Chain(1, 2)));
  EXPECT_FALSE(manager.AddGraph(Chain(1, 2)));
  EXPECT_EQ(manager.graph_count(), 1u);
  EXPECT_EQ(manager.graphs_discarded_duplicate(), 1u);
}

TEST(DependencyManager, SubsumedIncomingDiscarded) {
  DependencyManager manager;
  DependencyGraph big = Chain(1, 2);
  big.nodes.push_back(3);
  big.param_counts[3] = 1;
  big.edges.push_back({1, 3, {{"x", 0}}});
  big.Normalize();
  ASSERT_TRUE(manager.AddGraph(big));
  EXPECT_FALSE(manager.AddGraph(Chain(1, 2)));  // subset of big
  EXPECT_EQ(manager.graph_count(), 1u);
  EXPECT_EQ(manager.graphs_discarded_subsumed(), 1u);
}

TEST(DependencyManager, IncomingSupersetReplacesExisting) {
  DependencyManager manager;
  ASSERT_TRUE(manager.AddGraph(Chain(1, 2)));
  DependencyGraph big = Chain(1, 2);
  big.nodes.push_back(3);
  big.param_counts[3] = 1;
  big.edges.push_back({1, 3, {{"x", 0}}});
  big.Normalize();
  ASSERT_TRUE(manager.AddGraph(big));
  EXPECT_EQ(manager.graph_count(), 1u);
  // The superset now serves Q1 arrivals.
  auto ready = manager.MarkTextAvail(1);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_TRUE(ready[0]->ContainsNode(3));
}

TEST(DependencyManager, LoopConstantGraphRetainedAlongsideSuperset) {
  // Fig. 6: A (plain superset) and B (loop-constant) both stay; C (plain
  // subset) is discarded.
  DependencyManager manager;
  DependencyGraph a = Chain(1, 2);
  a.nodes.push_back(3);
  a.param_counts[3] = 1;
  a.edges.push_back({1, 3, {{"x", 0}}});
  a.Normalize();
  DependencyGraph b = Chain(1, 2);
  b.loop_marked.insert(2);
  ASSERT_TRUE(manager.AddGraph(a));
  ASSERT_TRUE(manager.AddGraph(b));
  EXPECT_FALSE(manager.AddGraph(Chain(1, 2)));  // C
  EXPECT_EQ(manager.graph_count(), 2u);
}

TEST(DependencyManager, SubsumptionDisabledKeepsAll) {
  DependencyManager manager(DependencyManager::Options{false});
  DependencyGraph big = Chain(1, 2);
  big.nodes.push_back(3);
  big.param_counts[3] = 1;
  big.edges.push_back({1, 3, {{"x", 0}}});
  big.Normalize();
  ASSERT_TRUE(manager.AddGraph(big));
  ASSERT_TRUE(manager.AddGraph(Chain(1, 2)));
  EXPECT_EQ(manager.graph_count(), 2u);
}

TEST(DependencyManager, LoopConstantWaitsForIteration) {
  // Graph with dep Q1 and loop-constant Q3: readiness needs Q1 then Q3.
  DependencyManager manager;
  DependencyGraph g = Chain(1, 2);
  g.nodes.push_back(3);
  g.param_counts[3] = 2;
  g.edges.push_back({1, 3, {{"x", 0}}});
  g.loop_marked.insert(3);
  g.Normalize();
  ASSERT_TRUE(manager.AddGraph(g));

  EXPECT_TRUE(manager.MarkTextAvail(1).empty());   // waiting for Q3's text
  EXPECT_EQ(manager.MarkTextAvail(3).size(), 1u);  // first iteration seen

  // Next invocation: must wait again (per-loop constants are stale, §2.2).
  EXPECT_TRUE(manager.MarkTextAvail(1).empty());
  EXPECT_EQ(manager.MarkTextAvail(3).size(), 1u);
}

TEST(DependencyManager, LoopConstantBeforeDependencyIgnored) {
  DependencyManager manager;
  DependencyGraph g = Chain(1, 2);
  g.nodes.push_back(3);
  g.param_counts[3] = 2;
  g.edges.push_back({1, 3, {{"x", 0}}});
  g.loop_marked.insert(3);
  g.Normalize();
  ASSERT_TRUE(manager.AddGraph(g));

  // Q3's text from a previous invocation does not count before Q1 arrives.
  EXPECT_TRUE(manager.MarkTextAvail(3).empty());
  EXPECT_TRUE(manager.MarkTextAvail(1).empty());
  EXPECT_EQ(manager.MarkTextAvail(3).size(), 1u);
}

TEST(DependencyManager, IsRelevant) {
  DependencyManager manager;
  ASSERT_TRUE(manager.AddGraph(Chain(1, 2)));
  EXPECT_TRUE(manager.IsRelevant(1));
  EXPECT_TRUE(manager.IsRelevant(2));
  EXPECT_FALSE(manager.IsRelevant(3));
}

TEST(DependencyManager, MultipleGraphsReadySimultaneously) {
  DependencyManager manager;
  DependencyGraph b = Chain(1, 2);
  b.loop_marked.insert(2);  // incomparable variant of the same chain
  ASSERT_TRUE(manager.AddGraph(Chain(1, 2)));
  ASSERT_TRUE(manager.AddGraph(Chain(1, 3)));
  ASSERT_TRUE(manager.AddGraph(b));
  auto ready = manager.MarkTextAvail(1);
  EXPECT_EQ(ready.size(), 2u);  // both plain graphs; b still waits on Q2
}

}  // namespace
}  // namespace chrono::core
