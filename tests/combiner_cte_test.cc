// CTE-join strategy (§4.1, Algorithm 2): combined-query generation and,
// crucially, end-to-end equivalence — executing the combined query and
// splitting its result must reproduce exactly what sequential execution of
// the original queries would have returned.

#include <gtest/gtest.h>

#include "core/combiner_cte.h"
#include "core/combiner_lateral.h"
#include "core/result_splitter.h"
#include "db/database.h"
#include "sql/template.h"

namespace chrono::core {
namespace {

using sql::Value;

class CteCombinerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.catalog()
                    ->CreateTable("watch_item",
                                  {db::ColumnDef{"wi_wl_id", Value::Type::kInt},
                                   db::ColumnDef{"wi_s_symb",
                                                 Value::Type::kString}})
                    .ok());
    ASSERT_TRUE(db_.catalog()
                    ->CreateTable("security",
                                  {db::ColumnDef{"s_symb", Value::Type::kString},
                                   db::ColumnDef{"s_num_out", Value::Type::kInt},
                                   db::ColumnDef{"s_ex", Value::Type::kInt}})
                    .ok());
    ASSERT_TRUE(db_.catalog()
                    ->CreateTable("daily_market",
                                  {db::ColumnDef{"dm_s_symb",
                                                 Value::Type::kString},
                                   db::ColumnDef{"dm_date", Value::Type::kInt},
                                   db::ColumnDef{"dm_close",
                                                 Value::Type::kDouble}})
                    .ok());
    Exec("INSERT INTO watch_item VALUES (1, 'AAA'), (1, 'BBB'), (1, 'CCC'), "
         "(2, 'DDD')");
    Exec("INSERT INTO security VALUES ('AAA', 100, 1), ('BBB', 200, 1), "
         "('CCC', 300, 2), ('DDD', 400, 2)");
    Exec("INSERT INTO daily_market VALUES ('AAA', 5, 10.5), ('AAA', 6, 11.0), "
         "('BBB', 5, 20.5), ('CCC', 5, 30.5), ('DDD', 5, 40.5)");
  }

  sql::ResultSet Exec(const std::string& sql) {
    auto outcome = db_.ExecuteText(sql);
    EXPECT_TRUE(outcome.ok()) << sql << " -> " << outcome.status().ToString();
    return outcome.ok() ? outcome->result : sql::ResultSet();
  }

  TemplateId Register(const std::string& sql) {
    auto parsed = sql::AnalyzeQuery(sql);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    latest_[parsed->tmpl->id] = parsed->params;
    return registry_.Register(parsed->tmpl);
  }

  CombineInput Input(const DependencyGraph* g) {
    return CombineInput{g, &registry_, &latest_};
  }

  /// Builds the Fig. 1 graph: Q1 (watch list) -> Q2 (security lookup).
  DependencyGraph Fig1Graph(TemplateId* q1_out = nullptr,
                            TemplateId* q2_out = nullptr) {
    TemplateId q1 =
        Register("SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 1");
    TemplateId q2 =
        Register("SELECT s_num_out FROM security WHERE s_symb = 'AAA'");
    DependencyGraph g;
    g.nodes = {q1, q2};
    g.param_counts[q1] = 1;
    g.param_counts[q2] = 1;
    g.edges.push_back({q1, q2, {{"wi_s_symb", 0}}});
    g.Normalize();
    if (q1_out) *q1_out = q1;
    if (q2_out) *q2_out = q2;
    return g;
  }

  db::Database db_;
  TemplateRegistry registry_;
  std::map<TemplateId, std::vector<Value>> latest_;
};

TEST_F(CteCombinerTest, CanHandlePlainSpj) {
  DependencyGraph g = Fig1Graph();
  EXPECT_TRUE(CteJoinCombiner::CanHandle(Input(&g)));
}

TEST_F(CteCombinerTest, RejectsAggregates) {
  TemplateId q1 =
      Register("SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 1");
  TemplateId q2 =
      Register("SELECT max(s_num_out) FROM security WHERE s_symb = 'AAA'");
  DependencyGraph g;
  g.nodes = {q1, q2};
  g.param_counts = {{q1, 1}, {q2, 1}};
  g.edges.push_back({q1, q2, {{"wi_s_symb", 0}}});
  g.Normalize();
  EXPECT_FALSE(CteJoinCombiner::CanHandle(Input(&g)));
}

TEST_F(CteCombinerTest, RejectsOrderByAndLimit) {
  TemplateId q1 =
      Register("SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 1 ORDER BY "
               "wi_s_symb LIMIT 2");
  TemplateId q2 =
      Register("SELECT s_num_out FROM security WHERE s_symb = 'AAA'");
  DependencyGraph g;
  g.nodes = {q1, q2};
  g.param_counts = {{q1, 2}, {q2, 1}};
  g.edges.push_back({q1, q2, {{"wi_s_symb", 0}}});
  g.Normalize();
  EXPECT_FALSE(CteJoinCombiner::CanHandle(Input(&g)));
}

TEST_F(CteCombinerTest, GeneratedSqlParsesAndExecutes) {
  DependencyGraph g = Fig1Graph();
  auto combined = CteJoinCombiner::Combine(Input(&g));
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  EXPECT_NE(combined->sql.find("WITH"), std::string::npos);
  EXPECT_NE(combined->sql.find("LEFT JOIN"), std::string::npos);
  auto outcome = db_.ExecuteText(combined->sql);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString() << "\n"
                            << combined->sql;
  EXPECT_EQ(outcome->result.row_count(), 3u);  // one per watch item
}

TEST_F(CteCombinerTest, SplitReproducesSequentialExecution) {
  TemplateId q1, q2;
  DependencyGraph g = Fig1Graph(&q1, &q2);
  auto combined = CteJoinCombiner::Combine(Input(&g));
  ASSERT_TRUE(combined.ok());
  auto outcome = db_.ExecuteText(combined->sql);
  ASSERT_TRUE(outcome.ok());
  auto split = SplitResult(*combined, outcome->result, registry_);
  ASSERT_TRUE(split.ok()) << split.status().ToString();

  // 1 result set for Q1 + 3 for Q2 (one per loop iteration).
  ASSERT_EQ(split->size(), 4u);

  for (const auto& entry : *split) {
    sql::ResultSet direct = Exec(entry.key);
    EXPECT_EQ(*entry.result, direct) << entry.key;
  }
}

TEST_F(CteCombinerTest, SplitHandlesUnmatchedRows) {
  Exec("INSERT INTO watch_item VALUES (1, 'NOSEC')");
  TemplateId q1, q2;
  DependencyGraph g = Fig1Graph(&q1, &q2);
  auto combined = CteJoinCombiner::Combine(Input(&g));
  ASSERT_TRUE(combined.ok());
  auto outcome = db_.ExecuteText(combined->sql);
  ASSERT_TRUE(outcome.ok());
  auto split = SplitResult(*combined, outcome->result, registry_);
  ASSERT_TRUE(split.ok());
  // Q1 (4 rows) + 4 Q2 iterations, one of which is empty.
  ASSERT_EQ(split->size(), 5u);
  for (const auto& entry : *split) {
    EXPECT_EQ(*entry.result, Exec(entry.key)) << entry.key;
  }
}

TEST_F(CteCombinerTest, ThreeLevelChain) {
  // Q1 -> Q2 (security) -> Q3 (daily market by exchange? use s_symb chain):
  // Q3 takes the security symbol via Q2's output.
  TemplateId q1 =
      Register("SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 1");
  TemplateId q2 = Register(
      "SELECT s_symb, s_num_out FROM security WHERE s_symb = 'AAA'");
  TemplateId q3 = Register(
      "SELECT dm_close FROM daily_market WHERE dm_s_symb = 'AAA'");
  latest_[q3] = {Value::String("AAA")};
  DependencyGraph g;
  g.nodes = {q1, q2, q3};
  g.param_counts = {{q1, 1}, {q2, 1}, {q3, 1}};
  g.edges.push_back({q1, q2, {{"wi_s_symb", 0}}});
  g.edges.push_back({q2, q3, {{"s_symb", 0}}});
  g.Normalize();

  ASSERT_TRUE(CteJoinCombiner::CanHandle(Input(&g)));
  auto combined = CteJoinCombiner::Combine(Input(&g));
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  auto outcome = db_.ExecuteText(combined->sql);
  ASSERT_TRUE(outcome.ok()) << combined->sql;
  auto split = SplitResult(*combined, outcome->result, registry_);
  ASSERT_TRUE(split.ok());
  // Q1 + 3 Q2 iterations + 3 Q3 iterations (AAA has two market rows but a
  // single iteration result set).
  EXPECT_EQ(split->size(), 7u);
  for (const auto& entry : *split) {
    EXPECT_EQ(*entry.result, Exec(entry.key)) << entry.key;
  }
}

TEST_F(CteCombinerTest, SiblingChildren) {
  // Fig. 6 graph A shape: Q1 feeds both Q2 and Q3.
  TemplateId q1 =
      Register("SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 1");
  TemplateId q2 =
      Register("SELECT s_num_out FROM security WHERE s_symb = 'AAA'");
  TemplateId q3 = Register(
      "SELECT dm_close FROM daily_market WHERE dm_s_symb = 'AAA' AND dm_date "
      "= 5");
  latest_[q3] = {Value::String("AAA"), Value::Int(5)};
  DependencyGraph g;
  g.nodes = {q1, q2, q3};
  g.param_counts = {{q1, 1}, {q2, 1}, {q3, 2}};
  g.edges.push_back({q1, q2, {{"wi_s_symb", 0}}});
  g.edges.push_back({q1, q3, {{"wi_s_symb", 0}}});
  g.Normalize();

  auto combined = CteJoinCombiner::Combine(Input(&g));
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  auto outcome = db_.ExecuteText(combined->sql);
  ASSERT_TRUE(outcome.ok()) << combined->sql;
  auto split = SplitResult(*combined, outcome->result, registry_);
  ASSERT_TRUE(split.ok());
  for (const auto& entry : *split) {
    EXPECT_EQ(*entry.result, Exec(entry.key)) << entry.key;
  }
}

TEST_F(CteCombinerTest, PerLoopConstantBoundFromLatestText) {
  // Fig. 4: Q3's dm_date comes from the observed first iteration.
  TemplateId q1 =
      Register("SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 1");
  TemplateId q3 = Register(
      "SELECT dm_close FROM daily_market WHERE dm_s_symb = 'AAA' AND dm_date "
      "= 6");
  latest_[q3] = {Value::String("AAA"), Value::Int(6)};
  DependencyGraph g;
  g.nodes = {q1, q3};
  g.param_counts = {{q1, 1}, {q3, 2}};
  g.edges.push_back({q1, q3, {{"wi_s_symb", 0}}});
  g.loop_marked.insert(q3);
  g.Normalize();

  auto combined = CteJoinCombiner::Combine(Input(&g));
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  // dm_date = 6 (the per-loop constant) must appear in the combined SQL.
  EXPECT_NE(combined->sql.find("= 6"), std::string::npos) << combined->sql;
  auto outcome = db_.ExecuteText(combined->sql);
  ASSERT_TRUE(outcome.ok());
  auto split = SplitResult(*combined, outcome->result, registry_);
  ASSERT_TRUE(split.ok());
  for (const auto& entry : *split) {
    EXPECT_EQ(*entry.result, Exec(entry.key)) << entry.key;
  }
}

TEST_F(CteCombinerTest, MissingConstantFails) {
  TemplateId q1 =
      Register("SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 1");
  TemplateId q3 = Register(
      "SELECT dm_close FROM daily_market WHERE dm_s_symb = 'AAA' AND dm_date "
      "= 6");
  latest_.erase(q3);  // no observed text for the loop constant
  DependencyGraph g;
  g.nodes = {q1, q3};
  g.param_counts = {{q1, 1}, {q3, 2}};
  g.edges.push_back({q1, q3, {{"wi_s_symb", 0}}});
  g.loop_marked.insert(q3);
  g.Normalize();
  EXPECT_FALSE(CteJoinCombiner::Combine(Input(&g)).ok());
}

TEST_F(CteCombinerTest, DuplicateSourceRowsDeduplicatedByCandidateKey) {
  // Two watch items with the SAME symbol: Q1's split result must keep both
  // rows (distinct rowids) while Q2 fan-out stays deduplicated (§4.1.1).
  Exec("INSERT INTO watch_item VALUES (1, 'AAA')");
  TemplateId q1, q2;
  DependencyGraph g = Fig1Graph(&q1, &q2);
  auto combined = CteJoinCombiner::Combine(Input(&g));
  ASSERT_TRUE(combined.ok());
  auto outcome = db_.ExecuteText(combined->sql);
  ASSERT_TRUE(outcome.ok());
  auto split = SplitResult(*combined, outcome->result, registry_);
  ASSERT_TRUE(split.ok());
  for (const auto& entry : *split) {
    EXPECT_EQ(*entry.result, Exec(entry.key)) << entry.key;
  }
  // Q1's decoded result has 4 rows (duplicate symbol preserved).
  for (const auto& entry : *split) {
    if (entry.tmpl == q1) EXPECT_EQ(entry.result->row_count(), 4u);
  }
}

TEST_F(CteCombinerTest, EmptyDriverStillCachesEmptyRoot) {
  TemplateId q1, q2;
  DependencyGraph g = Fig1Graph(&q1, &q2);
  latest_[q1] = {Value::Int(99)};  // watch list with no items
  auto combined = CteJoinCombiner::Combine(Input(&g));
  ASSERT_TRUE(combined.ok());
  auto outcome = db_.ExecuteText(combined->sql);
  ASSERT_TRUE(outcome.ok());
  auto split = SplitResult(*combined, outcome->result, registry_);
  ASSERT_TRUE(split.ok());
  ASSERT_EQ(split->size(), 1u);
  EXPECT_EQ((*split)[0].tmpl, q1);
  EXPECT_TRUE((*split)[0].result->empty());
}

TEST_F(CteCombinerTest, StrategySelectionPrefersCte) {
  DependencyGraph g = Fig1Graph();
  auto combined = CombineGraph(Input(&g));
  ASSERT_TRUE(combined.ok());
  EXPECT_NE(combined->sql.find("WITH"), std::string::npos);
}

}  // namespace
}  // namespace chrono::core
