// Unit tests for the remote-call deadline budget and the full-jitter
// exponential backoff schedule (both driven by injected clocks, so every
// assertion is deterministic).

#include <gtest/gtest.h>

#include <cstdint>

#include "common/status.h"
#include "net/retry_policy.h"

namespace chrono::net {
namespace {

TEST(Deadline, DefaultIsUnlimited) {
  Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_EQ(d.remaining_us(), UINT64_MAX);
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, ZeroBudgetIsUnlimited) {
  uint64_t now = 100;
  Deadline d(0, [&now] { return now; });
  EXPECT_TRUE(d.unlimited());
  now += 1'000'000'000;
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, CountsDownAgainstInjectedClock) {
  uint64_t now = 1'000;
  Deadline d(500, [&now] { return now; });
  EXPECT_FALSE(d.unlimited());
  EXPECT_EQ(d.remaining_us(), 500u);
  now += 200;
  EXPECT_EQ(d.remaining_us(), 300u);
  now += 299;
  EXPECT_EQ(d.remaining_us(), 1u);
  EXPECT_FALSE(d.expired());
  now += 1;
  EXPECT_TRUE(d.expired());
  // Past the deadline it stays expired, never wraps.
  now += 10'000;
  EXPECT_EQ(d.remaining_us(), 0u);
}

TEST(RetryPolicy, ShouldRetryHonorsMaxAttempts) {
  RetryOptions opt;
  opt.max_attempts = 3;
  RetryPolicy policy(opt);
  EXPECT_TRUE(policy.ShouldRetry(1));
  EXPECT_TRUE(policy.ShouldRetry(2));
  EXPECT_FALSE(policy.ShouldRetry(3));
  EXPECT_FALSE(policy.ShouldRetry(4));
}

TEST(RetryPolicy, SingleAttemptMeansNoRetry) {
  RetryOptions opt;
  opt.max_attempts = 1;
  RetryPolicy policy(opt);
  EXPECT_FALSE(policy.ShouldRetry(1));
}

TEST(RetryPolicy, BackoffCapGrowsExponentiallyToCeiling) {
  RetryOptions opt;
  opt.max_attempts = 10;
  opt.initial_backoff_us = 5'000;
  opt.max_backoff_us = 100'000;
  opt.multiplier = 2.0;
  RetryPolicy policy(opt);
  EXPECT_EQ(policy.BackoffCapUs(1), 5'000u);
  EXPECT_EQ(policy.BackoffCapUs(2), 10'000u);
  EXPECT_EQ(policy.BackoffCapUs(3), 20'000u);
  EXPECT_EQ(policy.BackoffCapUs(4), 40'000u);
  EXPECT_EQ(policy.BackoffCapUs(5), 80'000u);
  // The ceiling binds from here on, for arbitrarily late attempts.
  EXPECT_EQ(policy.BackoffCapUs(6), 100'000u);
  EXPECT_EQ(policy.BackoffCapUs(30), 100'000u);
}

TEST(RetryPolicy, FullJitterSpansZeroToCap) {
  RetryOptions opt;
  opt.initial_backoff_us = 8'000;
  RetryPolicy policy(opt);
  EXPECT_EQ(policy.BackoffUs(1, 0.0), 0u);
  EXPECT_EQ(policy.BackoffUs(1, 0.5), 4'000u);
  // u01 lives in [0, 1): the backoff never reaches the cap exactly.
  EXPECT_LT(policy.BackoffUs(1, 0.999999), 8'000u);
  for (double u : {0.1, 0.37, 0.62, 0.93}) {
    uint64_t b = policy.BackoffUs(2, u);
    EXPECT_LE(b, policy.BackoffCapUs(2));
  }
}

TEST(RetryPolicy, OnlyTransportFailuresAreRetryable) {
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::Unavailable("conn reset")));
  EXPECT_TRUE(
      RetryPolicy::IsRetryable(Status::DeadlineExceeded("attempt timeout")));
  // Application-level failures would fail identically on every try.
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::ParseError("bad sql")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::ExecutionError("div by 0")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::NotFound("no table")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::OK()));
}

}  // namespace
}  // namespace chrono::net
