// Exporter tests: golden-file Prometheus exposition, the structural
// validator's positive/negative cases, JSON rendering, and an end-to-end
// StatsServer scrape over a real loopback socket.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/audit.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/stats_server.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace chrono::obs {
namespace {

/// The fixed registry the golden file pins down: one labelled counter
/// family, one gauge, one histogram with three known observations.
MetricsRegistry* GoldenRegistry() {
  auto* r = new MetricsRegistry();
  r->GetCounter("app_requests_total", "Requests served", {{"op", "read"}})
      ->Increment(3);
  r->GetCounter("app_requests_total", "Requests served", {{"op", "write"}})
      ->Increment(1);
  r->GetGauge("app_queue_depth", "Queue depth")->Set(7);
  Histogram* h = r->GetHistogram("app_latency_ns", "Latency");
  h->Record(1);
  h->Record(3);
  h->Record(17);
  return r;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(PrometheusExport, MatchesGoldenFile) {
  std::unique_ptr<MetricsRegistry> r(GoldenRegistry());
  std::string got = ToPrometheusText(r->Snapshot());
  std::string want =
      ReadFileOrDie(std::string(CHRONO_TEST_DATA_DIR) + "/metrics_golden.prom");
  EXPECT_EQ(got, want) << "rendered exposition:\n" << got;
}

TEST(PrometheusExport, GoldenOutputValidates) {
  std::unique_ptr<MetricsRegistry> r(GoldenRegistry());
  Status s = ValidatePrometheusText(ToPrometheusText(r->Snapshot()));
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(PrometheusExport, EscapesLabelValues) {
  MetricsRegistry r;
  r.GetCounter("esc_total", "h", {{"q", "say \"hi\"\\n"}})->Increment();
  std::string text = ToPrometheusText(r.Snapshot());
  EXPECT_NE(text.find("q=\"say \\\"hi\\\"\\\\n\""), std::string::npos) << text;
  EXPECT_TRUE(ValidatePrometheusText(text).ok());
}

// ---- Validator negative cases ------------------------------------------

TEST(PrometheusValidator, RejectsEmptyInput) {
  EXPECT_FALSE(ValidatePrometheusText("").ok());
}

TEST(PrometheusValidator, RejectsSampleWithoutTypeOrHelp) {
  EXPECT_FALSE(ValidatePrometheusText("orphan_total 3\n").ok());
  EXPECT_FALSE(
      ValidatePrometheusText("# TYPE half_total counter\nhalf_total 3\n")
          .ok());  // TYPE but no HELP
}

TEST(PrometheusValidator, RejectsNonNumericValue) {
  std::string text =
      "# HELP x_total h\n# TYPE x_total counter\nx_total banana\n";
  EXPECT_FALSE(ValidatePrometheusText(text).ok());
}

TEST(PrometheusValidator, RejectsDecreasingCumulativeBuckets) {
  std::string text =
      "# HELP h_ns h\n# TYPE h_ns histogram\n"
      "h_ns_bucket{le=\"1\"} 5\n"
      "h_ns_bucket{le=\"2\"} 3\n"
      "h_ns_bucket{le=\"+Inf\"} 5\n"
      "h_ns_sum 9\nh_ns_count 5\n";
  EXPECT_FALSE(ValidatePrometheusText(text).ok());
}

TEST(PrometheusValidator, RejectsOutOfOrderLeBuckets) {
  std::string text =
      "# HELP h_ns h\n# TYPE h_ns histogram\n"
      "h_ns_bucket{le=\"2\"} 1\n"
      "h_ns_bucket{le=\"1\"} 1\n"
      "h_ns_bucket{le=\"+Inf\"} 2\n"
      "h_ns_sum 3\nh_ns_count 2\n";
  Status s = ValidatePrometheusText(text);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("not increasing"), std::string::npos)
      << s.ToString();
}

TEST(PrometheusValidator, RejectsDuplicateLeBuckets) {
  // Strictly ascending: a repeated bound is as invalid as a descending one.
  std::string text =
      "# HELP h_ns h\n# TYPE h_ns histogram\n"
      "h_ns_bucket{le=\"1\"} 1\n"
      "h_ns_bucket{le=\"1\"} 2\n"
      "h_ns_bucket{le=\"+Inf\"} 2\n"
      "h_ns_sum 3\nh_ns_count 2\n";
  EXPECT_FALSE(ValidatePrometheusText(text).ok());
}

TEST(PrometheusValidator, RejectsBucketsAfterInf) {
  // +Inf must be the terminal bound — a finite bucket after it cannot be
  // ascending.
  std::string text =
      "# HELP h_ns h\n# TYPE h_ns histogram\n"
      "h_ns_bucket{le=\"+Inf\"} 2\n"
      "h_ns_bucket{le=\"9\"} 1\n"
      "h_ns_sum 3\nh_ns_count 2\n";
  EXPECT_FALSE(ValidatePrometheusText(text).ok());
}

TEST(PrometheusValidator, RejectsMissingInfBucket) {
  std::string text =
      "# HELP h_ns h\n# TYPE h_ns histogram\n"
      "h_ns_bucket{le=\"1\"} 5\n"
      "h_ns_sum 5\nh_ns_count 5\n";
  EXPECT_FALSE(ValidatePrometheusText(text).ok());
}

TEST(PrometheusValidator, RejectsCountBucketMismatch) {
  std::string text =
      "# HELP h_ns h\n# TYPE h_ns histogram\n"
      "h_ns_bucket{le=\"+Inf\"} 5\n"
      "h_ns_sum 5\nh_ns_count 7\n";
  EXPECT_FALSE(ValidatePrometheusText(text).ok());
}

TEST(PrometheusValidator, RejectsCounterWithoutTotalSuffix) {
  Status s = ValidatePrometheusText(
      "# HELP reqs h\n# TYPE reqs counter\nreqs 3\n");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("must end in '_total'"), std::string::npos);
  // Gauges and histograms carry no suffix requirement.
  EXPECT_TRUE(
      ValidatePrometheusText("# HELP d h\n# TYPE d gauge\nd 3\n").ok());
}

TEST(PrometheusValidator, RejectsHelpAfterFirstSample) {
  std::string text =
      "# HELP x_total h\n# TYPE x_total counter\nx_total{op=\"r\"} 1\n"
      "# HELP x_total late\nx_total{op=\"w\"} 2\n";
  Status s = ValidatePrometheusText(text);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("after its first sample"), std::string::npos);
}

TEST(PrometheusValidator, AcceptsHandWrittenValidHistogram) {
  std::string text =
      "# HELP h_ns h\n# TYPE h_ns histogram\n"
      "h_ns_bucket{op=\"r\",le=\"1\"} 2\n"
      "h_ns_bucket{op=\"r\",le=\"+Inf\"} 5\n"
      "h_ns_sum{op=\"r\"} 40\nh_ns_count{op=\"r\"} 5\n";
  Status s = ValidatePrometheusText(text);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// ---- JSON ---------------------------------------------------------------

TEST(JsonExport, ContainsValuesAndPercentiles) {
  std::unique_ptr<MetricsRegistry> r(GoldenRegistry());
  std::string json = ToJson(r->Snapshot());
  EXPECT_NE(json.find("\"name\":\"app_requests_total\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"op\":\"read\"}"), std::string::npos);
  EXPECT_NE(json.find("\"value\":3"), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("[\"+Inf\",3]"), std::string::npos);
}

TEST(JsonExport, TracesIncludeAttributionOnlyWhenPresent) {
  auto a = std::make_shared<RequestTrace>();
  a->id = 1;
  a->sql = "SELECT 1";
  a->outcome = TraceOutcome::kRemotePlain;
  auto b = std::make_shared<RequestTrace>();
  b->id = 2;
  b->outcome = TraceOutcome::kCacheHit;
  b->prefetch_plan = 9;
  b->prefetch_src = 4;
  b->spans.push_back({Stage::kCacheLookup, 1, 2});
  std::string json = TracesToJson({b, a});
  EXPECT_NE(json.find("\"prefetch_plan\":9"), std::string::npos);
  EXPECT_NE(json.find("\"prefetch_src\":4"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"cache_hit\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"cache_lookup\""), std::string::npos);
  // Trace `a` was demand-filled: no attribution keys in its object.
  size_t a_pos = json.find("\"id\":1");
  ASSERT_NE(a_pos, std::string::npos);
  EXPECT_EQ(json.find("prefetch_plan", a_pos), std::string::npos);
}

// ---- Chrome trace-event export ------------------------------------------

/// Two fixed traces covering every feature the Chrome renderer emits:
/// process metadata, outcome-named request spans, stage spans, backend
/// annotations, forced retention and SQL needing escaping.
std::vector<std::shared_ptr<const RequestTrace>> ChromeFixture() {
  auto slow = std::make_shared<RequestTrace>();
  slow->id = 7;
  slow->client = 3;
  slow->tmpl = 21;
  slow->sql = "SELECT \"v\" FROM t";
  slow->start_us = 1000;
  slow->total_us = 900;
  slow->outcome = TraceOutcome::kRemotePlain;
  slow->forced = true;
  slow->spans.push_back({Stage::kWireDecode, 0, 10});
  slow->spans.push_back({Stage::kQueueWait, 10, 40});
  slow->spans.push_back({Stage::kExecute, 50, 800});
  slow->spans.push_back({Stage::kDbExecute, 60, 700});
  slow->spans.push_back({Stage::kCompletionWait, 850, 30});
  slow->spans.push_back({Stage::kResponseFlush, 880, 20});
  slow->annotations.push_back({AnnotationKind::kRetry, 400, 2});
  slow->annotations.push_back({AnnotationKind::kBreakerState, 500, 1});

  auto hit = std::make_shared<RequestTrace>();
  hit->id = 8;
  hit->client = 4;
  hit->sql = "SELECT 1";
  hit->start_us = 2500;
  hit->total_us = 40;
  hit->outcome = TraceOutcome::kCacheHit;
  hit->prefetch_plan = 5;
  hit->prefetch_src = 2;
  hit->spans.push_back({Stage::kCacheLookup, 1, 30});
  return {slow, hit};
}

TEST(ChromeExport, MatchesGoldenFile) {
  std::string got = TracesToChromeJson(ChromeFixture());
  std::string want = ReadFileOrDie(std::string(CHRONO_TEST_DATA_DIR) +
                                   "/traces_chrome_golden.json");
  EXPECT_EQ(got, want) << "rendered trace-event JSON:\n" << got;
}

TEST(ChromeExport, GoldenRoundTripsThroughStrictParser) {
  std::string json = TracesToChromeJson(ChromeFixture());
  Status valid = ValidateJson(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << json;
  // Envelope + the three event kinds Perfetto needs.
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // process names
  // The request span is named by outcome, placed at absolute ts, on
  // pid=client / tid=trace id.
  EXPECT_NE(json.find("{\"name\":\"remote_plain\",\"cat\":\"request\","
                      "\"ph\":\"X\",\"ts\":1000,\"dur\":900,\"pid\":3,"
                      "\"tid\":7"),
            std::string::npos)
      << json;
  // Stage spans shift by the trace's start (1000 + 10 = 1010).
  EXPECT_NE(json.find("{\"name\":\"queue_wait\",\"cat\":\"stage\","
                      "\"ph\":\"X\",\"ts\":1010,\"dur\":40"),
            std::string::npos)
      << json;
  // Backend annotations become instant events carrying their value.
  EXPECT_NE(json.find("{\"name\":\"retry\",\"cat\":\"backend\",\"ph\":\"i\","
                      "\"ts\":1400"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"args\":{\"value\":2}"), std::string::npos) << json;
}

TEST(ChromeExport, SkipsNullEntriesAndEscapesSql) {
  auto t = std::make_shared<RequestTrace>();
  t->id = 1;
  t->client = 1;
  t->sql = "SELECT \"x\"";
  std::string json = TracesToChromeJson({nullptr, t, nullptr});
  EXPECT_TRUE(ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("SELECT \\\"x\\\""), std::string::npos) << json;
}

TEST(TailExport, CarriesCountersAndExemplarLinks) {
  auto t = std::make_shared<RequestTrace>();
  t->id = 11;
  t->total_us = 1000;  // 1 ms = 1'000'000 ns
  t->outcome = TraceOutcome::kRemotePlain;
  std::string json = TailToJson({t}, /*offered=*/20, /*admitted=*/3);
  EXPECT_TRUE(ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"offered\":20,\"admitted\":3"), std::string::npos);
  // The exemplar joins this trace back to the latency histogram bucket
  // its total (in ns) lands in.
  uint64_t le =
      Histogram::BucketUpperBound(Histogram::BucketIndex(1'000'000));
  EXPECT_NE(json.find("\"exemplar\":{\"family\":"
                      "\"chrono_request_latency_ns\",\"le\":" +
                      std::to_string(le) + "}"),
            std::string::npos)
      << json;
}

// ---- StatsServer end-to-end --------------------------------------------

/// Minimal HTTP/1.0 GET against 127.0.0.1:port; returns the full response
/// (headers + body) or "" on connect failure.
std::string HttpGet(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(StatsServer, ServesMetricsAndTracesOverLoopback) {
  std::unique_ptr<MetricsRegistry> r(GoldenRegistry());
  TraceRing ring(4);
  auto t = std::make_shared<RequestTrace>();
  t->id = 77;
  t->sql = "SELECT 77";
  ring.Push(std::move(t));

  StatsServer server(r.get(), &ring);
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  Status valid = ValidatePrometheusText(Body(metrics));
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << Body(metrics);
  EXPECT_NE(Body(metrics).find("app_requests_total{op=\"read\"} 3"),
            std::string::npos);

  std::string json = HttpGet(server.port(), "/metrics.json");
  EXPECT_NE(json.find("200 OK"), std::string::npos);
  EXPECT_NE(json.find("\"app_queue_depth\""), std::string::npos);

  std::string traces = HttpGet(server.port(), "/traces");
  EXPECT_NE(traces.find("200 OK"), std::string::npos);
  EXPECT_NE(traces.find("\"id\":77"), std::string::npos);

  EXPECT_NE(HttpGet(server.port(), "/nope").find("404"), std::string::npos);
  EXPECT_GE(server.requests_served(), 4u);

  server.Stop();
  EXPECT_FALSE(server.running());
  // Stop is idempotent and Start-after-Stop is not supported; a second
  // Stop must be a no-op.
  server.Stop();
}

TEST(StatsServer, NullTraceRingServesEmptyList) {
  MetricsRegistry r;
  r.GetCounter("one_total", "h")->Increment();
  StatsServer server(&r, nullptr);
  ASSERT_TRUE(server.Start(0).ok());
  std::string traces = HttpGet(server.port(), "/traces");
  EXPECT_NE(traces.find("{\"traces\":[]}"), std::string::npos);
}

TEST(StatsServer, HealthzReportsUptimeWithoutAudit) {
  MetricsRegistry r;
  r.GetCounter("one_total", "h")->Increment();
  StatsServer server(&r, nullptr);
  ASSERT_TRUE(server.Start(0).ok());
  std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"uptime_seconds\":"), std::string::npos);
  // No audit attached: /prefetch degrades to an explicit "off" document.
  EXPECT_NE(HttpGet(server.port(), "/prefetch").find("\"enabled\":false"),
            std::string::npos);
}

TEST(StatsServer, HealthzReturns503WhileDegraded) {
  MetricsRegistry r;
  r.GetCounter("one_total", "h")->Increment();
  StatsServer server(&r, nullptr);
  bool healthy = false;
  server.SetHealthCallback([&healthy]() -> StatsServer::Health {
    if (healthy) return {true, ""};
    return {false, "circuit breaker open"};
  });
  ASSERT_TRUE(server.Start(0).ok());
  std::string degraded = HttpGet(server.port(), "/healthz");
  EXPECT_NE(degraded.find("503 Service Unavailable"), std::string::npos);
  EXPECT_NE(degraded.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(degraded.find("\"reason\":\"circuit breaker open\""),
            std::string::npos);
  // Recovery flips the same endpoint back to 200 without a restart.
  healthy = true;
  std::string ok = HttpGet(server.port(), "/healthz");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("\"status\":\"ok\""), std::string::npos);
}

TEST(StatsServer, PrefetchEndpointRendersAuditScoreboards) {
  MetricsRegistry r;
  r.GetCounter("one_total", "h")->Increment();
  PrefetchAudit audit(nullptr);
  JournalEvent events[3] = {};
  events[0].type = JournalEventType::kPlanMined;
  events[0].ts_us = 1;
  events[0].plan = 1;
  events[0].tmpl = 5;
  events[0].a = 2;
  events[1].type = JournalEventType::kEntryInstalled;
  events[1].ts_us = 2;
  events[1].plan = 1;
  events[1].tmpl = 7;
  events[1].src = 5;
  events[1].a = 100;
  events[2].type = JournalEventType::kEntryUsed;
  events[2].ts_us = 3;
  events[2].plan = 1;
  events[2].tmpl = 7;
  events[2].src = 5;
  events[2].a = 100;
  events[2].b = 50;
  audit.OnEvents(events, 3);

  StatsServer server(&r, nullptr, &audit);
  ASSERT_TRUE(server.Start(0).ok());
  std::string body = Body(HttpGet(server.port(), "/prefetch"));
  EXPECT_NE(body.find("\"plans\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"5\""), std::string::npos) << body;   // plan root
  EXPECT_NE(body.find("5->7"), std::string::npos) << body;    // edge key
  EXPECT_NE(body.find("\"installed\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"used\":1"), std::string::npos) << body;
}

TEST(StatsServer, UnknownPathsGet404WithEndpointDirectory) {
  MetricsRegistry r;
  r.GetCounter("one_total", "h")->Increment();
  StatsServer server(&r, nullptr);
  ASSERT_TRUE(server.Start(0).ok());
  for (const char* path : {"/nope", "/metrics/extra", "/Traces"}) {
    std::string response = HttpGet(server.port(), path);
    EXPECT_NE(response.find("404 Not Found"), std::string::npos) << path;
    // The body is a directory of every real endpoint, so a typo'd scrape
    // is self-correcting.
    std::string body = Body(response);
    for (const char* endpoint :
         {"/metrics", "/metrics.json", "/traces", "/traces.chrome", "/tail",
          "/timeseries", "/prefetch", "/wire", "/healthz"}) {
      EXPECT_NE(body.find(endpoint), std::string::npos) << path << " body";
    }
  }
}

TEST(StatsServer, TracesEndpointSupportsLimitAndOutcomeFilter) {
  MetricsRegistry r;
  r.GetCounter("one_total", "h")->Increment();
  TraceRing ring(8);
  for (uint64_t i = 1; i <= 6; ++i) {
    auto t = std::make_shared<RequestTrace>();
    t->id = i;
    t->outcome = i % 2 == 0 ? TraceOutcome::kCacheHit
                            : TraceOutcome::kRemotePlain;
    ring.Push(std::move(t));
  }
  StatsServer server(&r, &ring);
  ASSERT_TRUE(server.Start(0).ok());

  // ?n= keeps the newest n (the ring is most-recent-first).
  std::string body = Body(HttpGet(server.port(), "/traces?n=2"));
  EXPECT_NE(body.find("\"id\":6"), std::string::npos) << body;
  EXPECT_NE(body.find("\"id\":5"), std::string::npos) << body;
  EXPECT_EQ(body.find("\"id\":4"), std::string::npos) << body;

  // ?outcome= filters before the limit applies.
  body = Body(HttpGet(server.port(), "/traces?outcome=cache_hit&n=2"));
  EXPECT_NE(body.find("\"id\":6"), std::string::npos) << body;
  EXPECT_NE(body.find("\"id\":4"), std::string::npos) << body;
  EXPECT_EQ(body.find("\"id\":5"), std::string::npos) << body;
  EXPECT_EQ(body.find("\"id\":2"), std::string::npos) << body;

  // n=0 is a valid (empty) limit; malformed params are 400s.
  EXPECT_NE(Body(HttpGet(server.port(), "/traces?n=0")).find("[]"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/traces?n=two").find("400 Bad Request"),
            std::string::npos);
  EXPECT_NE(
      HttpGet(server.port(), "/traces?outcome=banana").find("400 Bad Request"),
      std::string::npos);
}

TEST(StatsServer, TailAndTimeseriesDegradeToEmptyDocumentsWhenOff) {
  MetricsRegistry r;
  r.GetCounter("one_total", "h")->Increment();
  StatsServer server(&r, nullptr);
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_EQ(Body(HttpGet(server.port(), "/tail")),
            "{\"offered\":0,\"admitted\":0,\"traces\":[]}");
  EXPECT_EQ(Body(HttpGet(server.port(), "/timeseries")), "{\"samples\":[]}");
  // /traces.chrome still renders a valid (empty) envelope.
  std::string chrome = Body(HttpGet(server.port(), "/traces.chrome"));
  EXPECT_TRUE(ValidateJson(chrome).ok()) << chrome;
  EXPECT_NE(chrome.find("\"traceEvents\":[]"), std::string::npos);
}

TEST(StatsServer, ServesTailAndTimeseriesDocuments) {
  MetricsRegistry r;
  Counter* requests =
      r.GetCounter("chrono_requests_total", "Requests", {{"op", "read"}});
  TailReservoir::Options tail_opts;
  tail_opts.top_k = 4;
  TailReservoir tail(tail_opts);
  auto slow = std::make_shared<RequestTrace>();
  slow->id = 99;
  slow->total_us = 5000;
  slow->annotations.push_back({AnnotationKind::kRetry, 100, 1});
  tail.Offer(slow, /*now_us=*/1000);

  uint64_t now_us = 1'000'000;
  TimeSeriesRing::Options ts_opts;
  TimeSeriesRing timeseries(&r, ts_opts, [&now_us] { return now_us; });
  timeseries.SampleNow();
  requests->Increment(50);
  now_us = 2'000'000;
  timeseries.SampleNow();

  StatsServer server(&r, nullptr, nullptr, &tail, &timeseries);
  ASSERT_TRUE(server.Start(0).ok());

  std::string tail_body = Body(HttpGet(server.port(), "/tail"));
  EXPECT_TRUE(ValidateJson(tail_body).ok()) << tail_body;
  EXPECT_NE(tail_body.find("\"id\":99"), std::string::npos) << tail_body;
  EXPECT_NE(tail_body.find("\"kind\":\"retry\""), std::string::npos);
  EXPECT_NE(tail_body.find("\"exemplar\""), std::string::npos);

  std::string ts_body = Body(HttpGet(server.port(), "/timeseries"));
  EXPECT_TRUE(ValidateJson(ts_body).ok()) << ts_body;
  EXPECT_NE(ts_body.find("\"qps\":50.0"), std::string::npos) << ts_body;

  // The tail's traces also surface in the merged Perfetto view.
  std::string chrome = Body(HttpGet(server.port(), "/traces.chrome"));
  EXPECT_TRUE(ValidateJson(chrome).ok()) << chrome;
  EXPECT_NE(chrome.find("\"trace_id\":99"), std::string::npos) << chrome;
}

TEST(StatsServer, SurvivesConcurrentScrapes) {
  std::unique_ptr<MetricsRegistry> r(GoldenRegistry());
  TraceRing ring(4);
  StatsServer server(r.get(), &ring);
  ASSERT_TRUE(server.Start(0).ok());
  int port = server.port();

  constexpr int kThreads = 8;
  constexpr int kRequests = 12;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([port, t, &bad] {
      const char* paths[] = {"/metrics", "/metrics.json", "/traces",
                             "/prefetch", "/healthz"};
      for (int i = 0; i < kRequests; ++i) {
        std::string path = paths[(t + i) % 5];
        std::string response = HttpGet(port, path);
        if (response.find("200 OK") == std::string::npos) {
          ++bad;
          continue;
        }
        // Every response must be complete: Content-Length == body size.
        size_t cl = response.find("Content-Length: ");
        size_t body_at = response.find("\r\n\r\n");
        if (cl == std::string::npos || body_at == std::string::npos) {
          ++bad;
          continue;
        }
        size_t want = std::strtoull(response.c_str() + cl + 16, nullptr, 10);
        if (response.size() - (body_at + 4) != want) ++bad;
        if (path == std::string("/metrics") &&
            !ValidatePrometheusText(response.substr(body_at + 4)).ok()) {
          ++bad;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GE(server.requests_served(),
            static_cast<uint64_t>(kThreads * kRequests));
}

}  // namespace
}  // namespace chrono::obs
