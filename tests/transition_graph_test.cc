#include <gtest/gtest.h>

#include "core/transition_graph.h"

namespace chrono::core {
namespace {

constexpr SimTime kMs = kMicrosPerMilli;

TEST(TransitionGraph, SimpleSequenceProbability) {
  TransitionGraph g(200 * kMs);
  // Q1 always followed by Q2.
  SimTime t = 0;
  for (int i = 0; i < 10; ++i) {
    g.Observe(1, t);
    t += 10 * kMs;
    g.Observe(2, t);
    t += 300 * kMs;  // gap exceeding delta_t between iterations
  }
  EXPECT_DOUBLE_EQ(g.Probability(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(g.Probability(2, 1), 0.0);
  EXPECT_EQ(g.Occurrences(1), 10u);
}

// The worked example of Fig. 3: a 100-iteration loop gives the Q2 self-edge
// probability 99/100 and Q2->Q3 probability 1/100.
TEST(TransitionGraph, Figure3LoopExample) {
  // The paper's 99/100 and 1/100 arise when delta_t spans one inter-query
  // gap; a wider window also credits earlier loop iterations.
  TransitionGraph g(static_cast<SimTime>(1.5 * kMs));
  SimTime t = 0;
  g.Observe(1, t);
  for (int i = 0; i < 100; ++i) {
    t += 1 * kMs;
    g.Observe(2, t);
  }
  t += 1 * kMs;
  g.Observe(3, t);
  EXPECT_DOUBLE_EQ(g.Probability(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(g.Probability(2, 2), 99.0 / 100.0);
  EXPECT_DOUBLE_EQ(g.Probability(2, 3), 1.0 / 100.0);
}

TEST(TransitionGraph, WindowExpiry) {
  TransitionGraph g(50 * kMs);
  g.Observe(1, 0);
  g.Observe(2, 100 * kMs);  // outside delta_t of Q1
  EXPECT_DOUBLE_EQ(g.Probability(1, 2), 0.0);
}

TEST(TransitionGraph, MultipleSuccessorsWithinWindowAllCredited) {
  TransitionGraph g(200 * kMs);
  g.Observe(1, 0);
  g.Observe(2, 10 * kMs);
  g.Observe(3, 20 * kMs);
  EXPECT_DOUBLE_EQ(g.Probability(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(g.Probability(1, 3), 1.0);
  EXPECT_DOUBLE_EQ(g.Probability(2, 3), 1.0);
}

TEST(TransitionGraph, SameSuccessorCountedOncePerOccurrence) {
  TransitionGraph g(1000 * kMs);
  g.Observe(1, 0);
  g.Observe(2, 10 * kMs);
  g.Observe(2, 20 * kMs);
  g.Observe(2, 30 * kMs);
  // Three Q2s within delta_t of the single Q1: probability stays <= 1.
  EXPECT_DOUBLE_EQ(g.Probability(1, 2), 1.0);
}

TEST(TransitionGraph, CorrelatedSuccessorsRespectTau) {
  TransitionGraph g(200 * kMs);
  SimTime t = 0;
  for (int i = 0; i < 10; ++i) {
    g.Observe(1, t);
    t += 10 * kMs;
    // 80% of the time Q2 follows; 20% Q3.
    g.Observe(i < 8 ? 2 : 3, t);
    t += 300 * kMs;
  }
  EXPECT_EQ(g.CorrelatedSuccessors(1, 0.8), (std::vector<TemplateId>{2}));
  EXPECT_EQ(g.CorrelatedSuccessors(1, 0.1),
            (std::vector<TemplateId>{2, 3}));
  EXPECT_TRUE(g.CorrelatedSuccessors(1, 0.9).empty());
}

TEST(TransitionGraph, CorrelatedPredecessors) {
  TransitionGraph g(200 * kMs);
  SimTime t = 0;
  for (int i = 0; i < 5; ++i) {
    g.Observe(1, t);
    t += 10 * kMs;
    g.Observe(2, t);
    t += 300 * kMs;
  }
  EXPECT_EQ(g.CorrelatedPredecessors(2, 0.8), (std::vector<TemplateId>{1}));
  EXPECT_TRUE(g.CorrelatedPredecessors(1, 0.8).empty());
}

TEST(TransitionGraph, TauEdgesFormPrunedGraph) {
  TransitionGraph g(20 * kMs);
  SimTime t = 0;
  // A 10-iteration alternating loop (1,2,1,2,...): both directions of the
  // loop edge exceed tau = 0.8 (Sec. 2.2's SCC precondition).
  for (int i = 0; i < 10; ++i) {
    g.Observe(1, t);
    t += 5 * kMs;
    g.Observe(2, t);
    t += 5 * kMs;
  }
  auto edges = g.TauEdges(0.8);
  EXPECT_NE(std::find(edges.begin(), edges.end(),
                      std::make_pair(TemplateId{1}, TemplateId{2})),
            edges.end());
  EXPECT_NE(std::find(edges.begin(), edges.end(),
                      std::make_pair(TemplateId{2}, TemplateId{1})),
            edges.end());
}

TEST(TransitionGraph, NodesListsAllObserved) {
  TransitionGraph g(200 * kMs);
  g.Observe(5, 0);
  g.Observe(3, 0);
  g.Observe(5, 0);
  EXPECT_EQ(g.Nodes(), (std::vector<TemplateId>{3, 5}));
}

TEST(TransitionGraph, UnknownTemplatesSafe) {
  TransitionGraph g(200 * kMs);
  EXPECT_DOUBLE_EQ(g.Probability(1, 2), 0.0);
  EXPECT_EQ(g.Occurrences(42), 0u);
  EXPECT_TRUE(g.CorrelatedSuccessors(42, 0.5).empty());
}

TEST(TransitionGraph, WindowCapBoundsMemory) {
  TransitionGraph g(1000 * 1000 * kMs, /*window_cap=*/4);
  // A burst of distinct templates at the same instant: only the last 4
  // occurrences may be credited as predecessors.
  for (TemplateId i = 0; i < 100; ++i) g.Observe(i, 0);
  // Template 0 fell out of the cap; its edge to 99 cannot exist.
  EXPECT_DOUBLE_EQ(g.Probability(0, 99), 0.0);
  EXPECT_DOUBLE_EQ(g.Probability(98, 99), 1.0);
}

}  // namespace
}  // namespace chrono::core
