// Protocol-robustness tests for the wire codec (DESIGN.md §13): every
// message type round-trips bit-exactly, and a malformed-input corpus —
// truncated headers, bad magic, wrong version, oversized length prefixes,
// garbage payloads, frames split across arbitrary read() boundaries —
// must produce a clean decode error (never a crash, hang or over-read;
// the CI ASan/TSan jobs run this file to enforce that).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "sql/result_set.h"
#include "sql/value.h"
#include "wire/protocol.h"

namespace chrono::wire {
namespace {

using sql::ResultSet;
using sql::Value;

/// Decodes exactly one frame from a complete buffer, asserting success.
Frame MustDecode(const std::string& bytes) {
  Frame frame;
  size_t consumed = 0;
  Status error;
  DecodeStatus status =
      DecodeFrame(bytes.data(), bytes.size(), 0, &frame, &consumed, &error);
  EXPECT_EQ(status, DecodeStatus::kFrame) << error.ToString();
  EXPECT_EQ(consumed, bytes.size());
  return frame;
}

/// Runs the decoder over a buffer expecting a protocol error.
Status MustFail(const std::string& bytes, uint32_t max_frame = 0) {
  Frame frame;
  size_t consumed = 0;
  Status error;
  DecodeStatus status = DecodeFrame(bytes.data(), bytes.size(), max_frame,
                                    &frame, &consumed, &error);
  EXPECT_EQ(status, DecodeStatus::kError);
  EXPECT_FALSE(error.ok());
  return error;
}

ResultSet SampleRows() {
  ResultSet rows({"id", "name", "score", "note"});
  rows.AddRow({Value::Int(-42), Value::String("alpha"), Value::Double(2.5),
               Value::Null()});
  rows.AddRow({Value::Int(7), Value::String(""), Value::Double(-0.0),
               Value::String(std::string("x\0y\xff", 4))});
  return rows;
}

// ---- Round trips ---------------------------------------------------------

TEST(WireCodec, HelloRoundTrip) {
  HelloBody body;
  body.client_id = 0xdeadbeefcafe1234ull;
  body.security_group = -3;
  Frame frame = MustDecode(EncodeHello(17, body));
  EXPECT_EQ(frame.header.type, MessageType::kHello);
  EXPECT_EQ(frame.header.request_id, 17u);
  auto decoded = DecodeHello(frame.payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->client_id, body.client_id);
  EXPECT_EQ(decoded->security_group, body.security_group);
}

TEST(WireCodec, QueryRoundTrip) {
  const std::string sql =
      "SELECT c_id, c_balance FROM customer WHERE c_id = 9";
  Frame frame = MustDecode(EncodeQuery(99, sql));
  EXPECT_EQ(frame.header.type, MessageType::kQuery);
  EXPECT_EQ(frame.header.request_id, 99u);
  auto decoded = DecodeQuery(frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->sql, sql);
  EXPECT_EQ(decoded->deadline_ms, 0u);
}

TEST(WireCodec, QueryWithEmbeddedNulAndUtf8) {
  std::string sql("a\0b", 3);
  sql += "é漢";
  auto decoded = DecodeQuery(MustDecode(EncodeQuery(1, sql)).payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->sql, sql);
}

TEST(WireCodec, QueryDeadlineRoundTrip) {
  Frame frame = MustDecode(EncodeQuery(4, "SELECT 1", 0, /*deadline_ms=*/250));
  EXPECT_TRUE(frame.header.flags & kFlagDeadline);
  auto decoded = DecodeQuery(frame.payload, frame.header.flags);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->sql, "SELECT 1");
  EXPECT_EQ(decoded->deadline_ms, 250u);
}

TEST(WireCodec, QueryDeadlineDroppedOnV1Frames) {
  // A v1 frame must never carry the v2 trailing field: the encoder drops
  // the deadline (and the flag) so a strict v1 peer decodes it cleanly.
  Frame frame = MustDecode(
      EncodeQuery(4, "SELECT 1", 0, /*deadline_ms=*/250, /*version=*/1));
  EXPECT_EQ(frame.header.version, 1);
  EXPECT_FALSE(frame.header.flags & kFlagDeadline);
  auto decoded = DecodeQuery(frame.payload, frame.header.flags);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->sql, "SELECT 1");
  EXPECT_EQ(decoded->deadline_ms, 0u);
}

TEST(WireCodec, QueryDeadlineFlagWithoutPayloadFails) {
  // kFlagDeadline promises a trailing u32; a payload without one is a
  // protocol violation, not a silent zero.
  Frame frame = MustDecode(EncodeQuery(4, "SELECT 1"));
  EXPECT_FALSE(DecodeQuery(frame.payload, kFlagDeadline).ok());
}

TEST(WireCodec, ResultRoundTripAllValueTypes) {
  ResultSet rows = SampleRows();
  Frame frame = MustDecode(EncodeResult(5, rows, kFlagStale));
  EXPECT_EQ(frame.header.type, MessageType::kResult);
  EXPECT_EQ(frame.header.flags, kFlagStale);
  auto decoded = DecodeResult(frame.payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, rows);
}

TEST(WireCodec, EmptyResultRoundTrip) {
  ResultSet empty;
  auto decoded = DecodeResult(MustDecode(EncodeResult(1, empty)).payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->row_count(), 0u);
  EXPECT_EQ(decoded->column_count(), 0u);
}

TEST(WireCodec, WideResultRoundTrip) {
  ResultSet rows({"v"});
  for (int i = 0; i < 1000; ++i) {
    rows.AddRow({Value::Int(i)});
  }
  auto decoded = DecodeResult(MustDecode(EncodeResult(2, rows)).payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, rows);
}

TEST(WireCodec, ErrorRoundTripEveryCode) {
  const Status statuses[] = {
      Status::InvalidArgument("bad"),   Status::NotFound("missing"),
      Status::ParseError("syntax"),     Status::ExecutionError("exec"),
      Status::Unsupported("nope"),      Status::Internal("bug"),
      Status::Unavailable("down"),      Status::DeadlineExceeded("late"),
  };
  for (const Status& status : statuses) {
    Frame frame = MustDecode(EncodeError(123, status));
    EXPECT_EQ(frame.header.type, MessageType::kError);
    ErrorBody decoded;
    ASSERT_TRUE(
        DecodeError(frame.payload, frame.header.flags, &decoded).ok());
    EXPECT_EQ(decoded.status.code(), status.code());
    EXPECT_EQ(decoded.status.message(), status.message());
    EXPECT_EQ(decoded.retry_after_ms, 0u);
    EXPECT_FALSE(decoded.expired);
  }
}

TEST(WireCodec, ErrorRetryAfterAndExpiredRoundTrip) {
  Status status = Status::Unavailable("server overloaded; retry later");
  Frame frame = MustDecode(
      EncodeError(9, status, kFlagRetryAfter | kFlagExpired,
                  /*retry_after_ms=*/400));
  EXPECT_TRUE(frame.header.flags & kFlagRetryAfter);
  EXPECT_TRUE(frame.header.flags & kFlagExpired);
  ErrorBody decoded;
  ASSERT_TRUE(DecodeError(frame.payload, frame.header.flags, &decoded).ok());
  EXPECT_EQ(decoded.status.code(), status.code());
  EXPECT_EQ(decoded.retry_after_ms, 400u);
  EXPECT_TRUE(decoded.expired);
}

TEST(WireCodec, ErrorRetryAfterDroppedOnV1Frames) {
  Frame frame = MustDecode(EncodeError(9, Status::Unavailable("busy"),
                                       kFlagRetryAfter | kFlagExpired,
                                       /*retry_after_ms=*/400,
                                       /*version=*/1));
  EXPECT_EQ(frame.header.version, 1);
  EXPECT_FALSE(frame.header.flags & kFlagRetryAfter);
  EXPECT_FALSE(frame.header.flags & kFlagExpired);
  ErrorBody decoded;
  ASSERT_TRUE(DecodeError(frame.payload, frame.header.flags, &decoded).ok());
  EXPECT_EQ(decoded.retry_after_ms, 0u);
  EXPECT_FALSE(decoded.expired);
}

TEST(WireCodec, ErrorRetryAfterFlagWithoutPayloadFails) {
  Frame frame = MustDecode(EncodeError(9, Status::Unavailable("busy")));
  ErrorBody decoded;
  EXPECT_FALSE(DecodeError(frame.payload, kFlagRetryAfter, &decoded).ok());
}

TEST(WireCodec, PingAndGoodbyeAreEmpty) {
  Frame ping = MustDecode(EncodePing(1ull << 60));
  EXPECT_EQ(ping.header.type, MessageType::kPing);
  EXPECT_EQ(ping.header.request_id, 1ull << 60);
  EXPECT_TRUE(ping.payload.empty());
  Frame bye = MustDecode(EncodeGoodbye(0));
  EXPECT_EQ(bye.header.type, MessageType::kGoodbye);
  EXPECT_TRUE(bye.payload.empty());
}

TEST(WireCodec, HeaderLayoutIsLittleEndianAndTwentyBytes) {
  std::string bytes = EncodePing(0x0102030405060708ull);
  ASSERT_EQ(bytes.size(), kHeaderBytes);
  // Magic appears as "PWCC" read LE -> bytes 'P','W','C','C' reversed:
  // 0x43435750 little-endian is 0x50 0x57 0x43 0x43.
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 0x50);
  EXPECT_EQ(static_cast<uint8_t>(bytes[1]), 0x57);
  EXPECT_EQ(static_cast<uint8_t>(bytes[2]), 0x43);
  EXPECT_EQ(static_cast<uint8_t>(bytes[3]), 0x43);
  EXPECT_EQ(static_cast<uint8_t>(bytes[4]), kProtocolVersion);
  EXPECT_EQ(static_cast<uint8_t>(bytes[5]),
            static_cast<uint8_t>(MessageType::kPing));
  // request_id little-endian: low byte first.
  EXPECT_EQ(static_cast<uint8_t>(bytes[8]), 0x08);
  EXPECT_EQ(static_cast<uint8_t>(bytes[15]), 0x01);
  // payload_len == 0.
  EXPECT_EQ(static_cast<uint8_t>(bytes[16]), 0);
}

// ---- Split-across-read() framing ----------------------------------------

TEST(WireCodec, FrameSplitAcrossEveryReadBoundary) {
  ResultSet rows = SampleRows();
  std::string bytes = EncodeQuery(7, "SELECT 1") + EncodeResult(7, rows);
  // Feed the stream one byte at a time: the decoder must report kNeedMore
  // at every prefix and produce both frames at exactly the right offsets.
  std::vector<Frame> frames;
  std::string buffer;
  for (char c : bytes) {
    buffer.push_back(c);
    for (;;) {
      Frame frame;
      size_t consumed = 0;
      Status error;
      DecodeStatus status = DecodeFrame(buffer.data(), buffer.size(), 0,
                                        &frame, &consumed, &error);
      if (status == DecodeStatus::kNeedMore) break;
      ASSERT_EQ(status, DecodeStatus::kFrame) << error.ToString();
      buffer.erase(0, consumed);
      frames.push_back(std::move(frame));
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(frames[0].header.type, MessageType::kQuery);
  auto decoded = DecodeResult(frames[1].payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, rows);
}

// ---- Malformed-input corpus ----------------------------------------------

TEST(WireCodec, TruncatedHeaderNeedsMoreNeverCrashes) {
  std::string bytes = EncodeQuery(1, "SELECT 1");
  for (size_t len = 0; len < kHeaderBytes; ++len) {
    Frame frame;
    size_t consumed = 0;
    Status error;
    EXPECT_EQ(DecodeFrame(bytes.data(), len, 0, &frame, &consumed, &error),
              DecodeStatus::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(WireCodec, BadMagicIsAnError) {
  std::string bytes = EncodePing(1);
  bytes[0] = 'X';
  Status error = MustFail(bytes);
  EXPECT_NE(error.message().find("magic"), std::string::npos);
}

TEST(WireCodec, WrongVersionIsAnError) {
  std::string bytes = EncodePing(1);
  bytes[4] = 99;
  Status error = MustFail(bytes);
  EXPECT_EQ(error.code(), Status::Code::kUnsupported);
}

TEST(WireCodec, UnknownMessageTypeIsAnError) {
  std::string bytes = EncodePing(1);
  bytes[5] = 0;  // below kHello
  MustFail(bytes);
  bytes[5] = 100;  // above kGoodbye
  MustFail(bytes);
}

TEST(WireCodec, OversizedPayloadLengthIsAnError) {
  std::string bytes = EncodePing(1);
  // Claim a payload far over the cap; no payload bytes need follow — the
  // decoder must reject on the declared length alone instead of buffering.
  uint32_t huge = 1u << 30;
  std::memcpy(&bytes[16], &huge, sizeof(huge));  // LE host assumed in test
  Status error = MustFail(bytes, /*max_frame=*/1 << 20);
  EXPECT_NE(error.message().find("cap"), std::string::npos);
}

TEST(WireCodec, GarbagePayloadsFailCleanly) {
  // A pile of hostile payloads against every typed decoder. None may
  // crash, over-read (ASan) or succeed.
  const std::string garbage[] = {
      std::string(),                       // empty where fields expected
      std::string(1, '\x01'),              // lone tag byte
      std::string(3, '\xff'),              // truncated length prefix
      std::string("\xff\xff\xff\xff", 4),  // length prefix 4 GiB, no bytes
      std::string(64, '\xee'),             // dense garbage
  };
  for (const std::string& payload : garbage) {
    EXPECT_FALSE(DecodeHello(payload).ok());
    EXPECT_FALSE(DecodeQuery(payload).ok());
    EXPECT_FALSE(DecodeResult(payload).ok());
    ErrorBody decoded;
    EXPECT_FALSE(DecodeError(payload, 0, &decoded).ok());
    EXPECT_FALSE(DecodeError(payload, kFlagRetryAfter, &decoded).ok());
  }
}

TEST(WireCodec, ResultWithLyingCountsFails) {
  // Claims 3 columns but carries only 1: must fail, not over-read.
  std::string payload;
  payload.append("\x03\x00\x00\x00", 4);  // column_count = 3
  payload.append("\x02\x00\x00\x00", 4);  // name length 2
  payload.append("id");
  EXPECT_FALSE(DecodeResult(payload).ok());

  // Claims 1000 rows with an empty body after the header.
  std::string payload2;
  payload2.append("\x01\x00\x00\x00", 4);  // 1 column
  payload2.append("\x01\x00\x00\x00", 4);  // name length 1
  payload2.append("v");
  payload2.append("\xe8\x03\x00\x00", 4);  // 1000 rows
  EXPECT_FALSE(DecodeResult(payload2).ok());
}

TEST(WireCodec, TrailingBytesAreErrors) {
  HelloBody body;
  Frame hello = MustDecode(EncodeHello(1, body));
  EXPECT_TRUE(DecodeHello(hello.payload).ok());
  EXPECT_FALSE(DecodeHello(hello.payload + "x").ok());

  Frame query = MustDecode(EncodeQuery(1, "SELECT 1"));
  EXPECT_FALSE(DecodeQuery(query.payload + "x").ok());

  Frame result = MustDecode(EncodeResult(1, SampleRows()));
  EXPECT_FALSE(DecodeResult(result.payload + "x").ok());
}

TEST(WireCodec, UnknownValueTagFails) {
  std::string payload;
  payload.append("\x01\x00\x00\x00", 4);  // 1 column
  payload.append("\x01\x00\x00\x00", 4);  // name length 1
  payload.append("v");
  payload.append("\x01\x00\x00\x00", 4);  // 1 row
  payload.push_back('\x09');              // tag 9: not a Value::Type
  EXPECT_FALSE(DecodeResult(payload).ok());
}

TEST(WireCodec, StatusCodeMappingIsTotal) {
  for (uint8_t wire = 0; wire < 32; ++wire) {
    Status::Code code = WireToStatusCode(wire);
    // Every wire byte maps to some valid code; known codes round-trip.
    if (wire <= StatusCodeToWire(Status::Code::kDeadlineExceeded)) {
      EXPECT_EQ(StatusCodeToWire(code), wire);
    } else {
      EXPECT_EQ(code, Status::Code::kInternal);
    }
  }
}

}  // namespace
}  // namespace chrono::wire
