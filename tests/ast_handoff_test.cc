// Zero-reparse combined execution: the combiners build the combined query
// as an AST and the remote server executes it directly. These tests
// cross-validate the AST-handoff path against the text round-trip
// (WriteStatement -> Parse -> Execute): both must produce byte-identical
// result sets, and the rendered text must itself be the writer's output
// for the handed-off tree.

#include <gtest/gtest.h>

#include "core/combiner_cte.h"
#include "core/combiner_lateral.h"
#include "core/middleware.h"
#include "core/result_splitter.h"
#include "db/database.h"
#include "sql/template.h"
#include "sql/writer.h"

namespace chrono::core {
namespace {

using sql::Value;

class AstHandoffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.catalog()
                    ->CreateTable("watch_item",
                                  {db::ColumnDef{"wi_wl_id", Value::Type::kInt},
                                   db::ColumnDef{"wi_s_symb",
                                                 Value::Type::kString}})
                    .ok());
    ASSERT_TRUE(db_.catalog()
                    ->CreateTable("security",
                                  {db::ColumnDef{"s_symb", Value::Type::kString},
                                   db::ColumnDef{"s_num_out", Value::Type::kInt},
                                   db::ColumnDef{"s_ex", Value::Type::kInt}})
                    .ok());
    Exec("INSERT INTO watch_item VALUES (1, 'AAA'), (1, 'BBB'), (1, 'CCC'), "
         "(2, 'DDD')");
    Exec("INSERT INTO security VALUES ('AAA', 100, 1), ('BBB', 200, 1), "
         "('CCC', 300, 2), ('DDD', 400, 2)");
  }

  sql::ResultSet Exec(const std::string& sql) {
    auto outcome = db_.ExecuteText(sql);
    EXPECT_TRUE(outcome.ok()) << sql << " -> " << outcome.status().ToString();
    return outcome.ok() ? outcome->result : sql::ResultSet();
  }

  TemplateId Register(const std::string& sql) {
    auto parsed = sql::AnalyzeQuery(sql);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    latest_[parsed->tmpl->id] = parsed->params;
    return registry_.Register(parsed->tmpl);
  }

  CombineInput Input(const DependencyGraph* g) {
    return CombineInput{g, &registry_, &latest_};
  }

  /// Q1 (watch list) -> Q2 (security lookup), CTE-combinable.
  DependencyGraph SpjGraph() {
    TemplateId q1 =
        Register("SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 1");
    TemplateId q2 =
        Register("SELECT s_num_out FROM security WHERE s_symb = 'AAA'");
    DependencyGraph g;
    g.nodes = {q1, q2};
    g.param_counts[q1] = 1;
    g.param_counts[q2] = 1;
    g.edges.push_back({q1, q2, {{"wi_s_symb", 0}}});
    g.Normalize();
    return g;
  }

  /// Q1 -> Q2 with an aggregate child: rejected by the CTE strategy,
  /// handled by the lateral-union strategy.
  DependencyGraph AggregateGraph() {
    TemplateId q1 =
        Register("SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 1");
    TemplateId q2 =
        Register("SELECT max(s_num_out) FROM security WHERE s_symb = 'AAA'");
    DependencyGraph g;
    g.nodes = {q1, q2};
    g.param_counts[q1] = 1;
    g.param_counts[q2] = 1;
    g.edges.push_back({q1, q2, {{"wi_s_symb", 0}}});
    g.Normalize();
    return g;
  }

  /// Executes the combined query both ways and asserts identical results.
  void ExpectAstMatchesText(const CombinedQuery& combined) {
    ASSERT_NE(combined.ast, nullptr);
    // The text form is exactly the writer's rendering of the handed tree.
    EXPECT_EQ(sql::WriteStatement(*combined.ast), combined.sql);
    auto via_text = db_.ExecuteText(combined.sql);
    ASSERT_TRUE(via_text.ok()) << via_text.status().ToString() << "\n"
                               << combined.sql;
    auto via_ast = db_.Execute(*combined.ast);
    ASSERT_TRUE(via_ast.ok()) << via_ast.status().ToString();
    EXPECT_EQ(via_ast->result, via_text->result) << combined.sql;
  }

  db::Database db_;
  TemplateRegistry registry_;
  std::map<TemplateId, std::vector<Value>> latest_;
};

TEST_F(AstHandoffTest, CteCombinedAstMatchesTextRoundTrip) {
  DependencyGraph g = SpjGraph();
  auto combined = CteJoinCombiner::Combine(Input(&g));
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  ExpectAstMatchesText(*combined);
}

TEST_F(AstHandoffTest, LateralCombinedAstMatchesTextRoundTrip) {
  DependencyGraph g = AggregateGraph();
  ASSERT_TRUE(LateralUnionCombiner::CanHandle(Input(&g)));
  auto combined = LateralUnionCombiner::Combine(Input(&g));
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  ExpectAstMatchesText(*combined);
}

TEST_F(AstHandoffTest, SplitIsIdenticalAcrossExecutionPaths) {
  DependencyGraph g = SpjGraph();
  auto combined = CteJoinCombiner::Combine(Input(&g));
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  auto via_text = db_.ExecuteText(combined->sql);
  auto via_ast = db_.Execute(*combined->ast);
  ASSERT_TRUE(via_text.ok());
  ASSERT_TRUE(via_ast.ok());
  auto split_text = SplitResult(*combined, via_text->result, registry_);
  auto split_ast = SplitResult(*combined, via_ast->result, registry_);
  ASSERT_TRUE(split_text.ok()) << split_text.status().ToString();
  ASSERT_TRUE(split_ast.ok()) << split_ast.status().ToString();
  ASSERT_EQ(split_ast->size(), split_text->size());
  for (size_t i = 0; i < split_ast->size(); ++i) {
    EXPECT_EQ((*split_ast)[i].key, (*split_text)[i].key);
    EXPECT_EQ(*(*split_ast)[i].result, *(*split_text)[i].result);
  }
}

TEST_F(AstHandoffTest, RemoteServerSkipsReparseForAstRequests) {
  EventQueue events;
  net::LatencyModel latency;
  RemoteDbServer remote(&events, &db_, latency, 1);

  DependencyGraph g = SpjGraph();
  auto combined = CteJoinCombiner::Combine(Input(&g));
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();

  sql::ResultSet ast_result;
  remote.Submit(RemoteDbServer::DbRequest{combined->sql, combined->ast},
                [&](SimTime, Result<db::ExecOutcome> outcome) {
                  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
                  ast_result = outcome->result;
                });
  events.RunAll();
  EXPECT_EQ(remote.ast_handoffs(), 1u);

  // Forced text round-trip (cross-validation switch) re-parses instead.
  remote.set_text_roundtrip(true);
  sql::ResultSet text_result;
  remote.Submit(RemoteDbServer::DbRequest{combined->sql, combined->ast},
                [&](SimTime, Result<db::ExecOutcome> outcome) {
                  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
                  text_result = outcome->result;
                });
  events.RunAll();
  EXPECT_EQ(remote.ast_handoffs(), 1u);  // unchanged
  EXPECT_EQ(ast_result, text_result);

  // Plain-text submissions never count as handoffs.
  remote.set_text_roundtrip(false);
  remote.Submit("SELECT s_num_out FROM security WHERE s_symb = 'AAA'",
                [&](SimTime, Result<db::ExecOutcome> outcome) {
                  ASSERT_TRUE(outcome.ok());
                });
  events.RunAll();
  EXPECT_EQ(remote.ast_handoffs(), 1u);
}

}  // namespace
}  // namespace chrono::core
