// Correctness property: for a single client (no concurrent writers), every
// result returned through the middleware — cache hit, coalesced wait,
// split combined result, or plain remote read — must be byte-identical to
// executing the same statement stream directly against a mirror database.
// This exercises the full stack (templates, learning, combining, splitting,
// session semantics) against ground truth on every workload.

#include <gtest/gtest.h>

#include "core/middleware.h"
#include "db/database.h"
#include "workloads/auctionmark.h"
#include "workloads/seats.h"
#include "workloads/tpce.h"
#include "workloads/wikipedia.h"

namespace chrono {
namespace {

using core::SystemMode;

class ConsistencyProperty
    : public ::testing::TestWithParam<std::tuple<const char*, SystemMode>> {
 protected:
  std::unique_ptr<workloads::Workload> MakeWorkload() {
    std::string name = std::get<0>(GetParam());
    if (name == "tpce") {
      workloads::TpceWorkload::Config c;
      c.customers = 30;
      c.securities = 80;
      c.watch_lists = 30;
      c.watch_items_per_list = 7;
      c.trades = 200;
      return std::make_unique<workloads::TpceWorkload>(c);
    }
    if (name == "wikipedia") {
      workloads::WikipediaWorkload::Config c;
      c.pages = 150;
      c.users = 150;
      return std::make_unique<workloads::WikipediaWorkload>(c);
    }
    if (name == "seats") {
      workloads::SeatsWorkload::Config c;
      c.customers = 60;
      c.flights = 80;
      c.routes = 16;
      return std::make_unique<workloads::SeatsWorkload>(c);
    }
    workloads::AuctionMarkWorkload::Config c;
    c.users = 50;
    c.items = 300;
    c.end_dates = 10;
    return std::make_unique<workloads::AuctionMarkWorkload>(c);
  }
};

TEST_P(ConsistencyProperty, MiddlewareMatchesDirectExecution) {
  // Two identically populated databases: one behind the middleware, one
  // as the ground-truth mirror.
  EventQueue events;
  db::Database behind;
  db::Database mirror;
  {
    auto workload = MakeWorkload();
    workload->Populate(&behind);
  }
  {
    auto workload = MakeWorkload();
    workload->Populate(&mirror);
  }
  auto workload = MakeWorkload();

  net::LatencyModel latency;
  core::RemoteDbServer remote(&events, &behind, latency, 8);
  core::MiddlewareConfig config;
  config.mode = std::get<1>(GetParam());
  config.Finalize();
  core::Middleware node(&events, &remote, latency, config);

  Rng rng(1234);
  int mismatches = 0;
  int statements = 0;
  for (int t = 0; t < 50 && mismatches == 0; ++t) {
    auto tx = workload->NextTransaction(&rng);
    const sql::ResultSet* prev = nullptr;
    sql::ResultSet last;
    while (auto sql_text = tx->Next(prev)) {
      // Through the middleware (run the event loop to completion so all
      // background prefetching lands too).
      sql::ResultSet via_mw;
      bool ok = false;
      node.SubmitQuery(0, 0, *sql_text,
                       [&](SimTime, const Result<sql::ResultSet>& result) {
                         ok = result.ok();
                         if (result.ok()) via_mw = *result;
                       });
      events.RunAll();
      ASSERT_TRUE(ok) << *sql_text;

      // Ground truth.
      auto direct = mirror.ExecuteText(*sql_text);
      ASSERT_TRUE(direct.ok()) << *sql_text;

      ++statements;
      if (direct->result.column_count() > 0 || via_mw.column_count() > 0) {
        if (!(via_mw == direct->result)) {
          ++mismatches;
          ADD_FAILURE() << "mismatch for: " << *sql_text << "\nvia middleware:\n"
                        << via_mw.ToString() << "\ndirect:\n"
                        << direct->result.ToString();
        }
      }
      last = via_mw;
      prev = &last;
    }
  }
  EXPECT_GT(statements, 100);
  EXPECT_EQ(mismatches, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllModes, ConsistencyProperty,
    ::testing::Combine(::testing::Values("tpce", "wikipedia", "seats",
                                         "auctionmark"),
                       ::testing::Values(SystemMode::kLru, SystemMode::kApollo,
                                         SystemMode::kScalpelCC,
                                         SystemMode::kChrono)),
    [](const ::testing::TestParamInfo<std::tuple<const char*, SystemMode>>&
           info) {
      std::string name = std::string(std::get<0>(info.param)) + "_" +
                         core::SystemModeName(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace chrono
