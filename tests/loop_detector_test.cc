#include <gtest/gtest.h>

#include <algorithm>

#include "core/loop_detector.h"
#include "sql/template.h"

namespace chrono::core {
namespace {

using sql::Value;

constexpr SimTime kMs = kMicrosPerMilli;

// ---- Tarjan SCC ---------------------------------------------------------

TEST(Tarjan, SingletonsWithoutSelfEdges) {
  auto sccs = StronglyConnectedComponents({1, 2, 3}, {{1, 2}, {2, 3}});
  EXPECT_EQ(sccs.size(), 3u);
  for (const auto& c : sccs) EXPECT_EQ(c.size(), 1u);
}

TEST(Tarjan, SimpleCycle) {
  auto sccs = StronglyConnectedComponents({1, 2, 3}, {{1, 2}, {2, 1}, {2, 3}});
  bool found = false;
  for (const auto& c : sccs) {
    if (c == std::vector<TemplateId>{1, 2}) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Tarjan, SelfLoopIsItsOwnComponent) {
  auto sccs = StronglyConnectedComponents({1}, {{1, 1}});
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_EQ(sccs[0], (std::vector<TemplateId>{1}));
}

TEST(Tarjan, LargerCycleWithTail) {
  auto sccs = StronglyConnectedComponents(
      {1, 2, 3, 4, 5}, {{1, 2}, {2, 3}, {3, 1}, {3, 4}, {4, 5}});
  bool found = false;
  for (const auto& c : sccs) {
    if (c == std::vector<TemplateId>{1, 2, 3}) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(sccs.size(), 3u);  // {1,2,3}, {4}, {5}
}

TEST(Tarjan, DisjointCycles) {
  auto sccs = StronglyConnectedComponents({1, 2, 3, 4},
                                          {{1, 2}, {2, 1}, {3, 4}, {4, 3}});
  EXPECT_EQ(sccs.size(), 2u);
}

TEST(Tarjan, EveryNodeAppearsExactlyOnce) {
  std::vector<TemplateId> nodes = {1, 2, 3, 4, 5, 6, 7};
  auto sccs = StronglyConnectedComponents(
      nodes, {{1, 2}, {2, 3}, {3, 2}, {4, 4}, {5, 6}, {6, 7}, {7, 5}});
  size_t total = 0;
  for (const auto& c : sccs) total += c.size();
  EXPECT_EQ(total, nodes.size());
}

TEST(Tarjan, DeepChainDoesNotOverflow) {
  // The implementation is iterative; a long chain must not crash.
  std::vector<TemplateId> nodes;
  std::vector<std::pair<TemplateId, TemplateId>> edges;
  for (TemplateId i = 0; i < 50000; ++i) {
    nodes.push_back(i);
    if (i > 0) edges.emplace_back(i - 1, i);
  }
  auto sccs = StronglyConnectedComponents(nodes, edges);
  EXPECT_EQ(sccs.size(), nodes.size());
}

// ---- GraphExtractor -----------------------------------------------------

class ExtractorTest : public ::testing::Test {
 protected:
  TemplateId Register(const std::string& sql) {
    auto parsed = sql::AnalyzeQuery(sql);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    latest_[parsed->tmpl->id] = parsed->params;
    return registry_.Register(parsed->tmpl);
  }

  // Simulates a Market-Watch-like loop `iters` times: Q1 then per row of a
  // 6-row result Q2 (mapped symbol) and optionally Q3 (mapped symbol +
  // per-loop constant date).
  void DriveLoopWorkload(TemplateId q1, TemplateId q2, TemplateId q3,
                         int invocations, bool with_q3) {
    for (int inv = 0; inv < invocations; ++inv) {
      transitions_.Observe(q1, t_);
      mapper_.ObserveQuery(q1, {Value::Int(inv)});
      sql::ResultSet rs({"symb"});
      for (int i = 0; i < 6; ++i) {
        rs.AddRow({Value::String("S" + std::to_string(inv) + "_" +
                                 std::to_string(i))});
      }
      mapper_.ObserveResult(q1, rs);
      for (int i = 0; i < 6; ++i) {
        t_ += 2 * kMs;
        transitions_.Observe(q2, t_);
        mapper_.ObserveQuery(q2, {rs.row(i)[0]});
        if (with_q3) {
          t_ += 2 * kMs;
          transitions_.Observe(q3, t_);
          mapper_.ObserveQuery(q3, {rs.row(i)[0], Value::Int(1000 + inv)});
        }
      }
      t_ += 400 * kMs;  // think time between invocations
    }
  }

  TemplateRegistry registry_;
  TransitionGraph transitions_{200 * kMs};
  ParamMapper mapper_{2};
  std::map<TemplateId, std::vector<Value>> latest_;
  SimTime t_ = 0;
};

TEST_F(ExtractorTest, ExtractsLoopWithPerLoopConstant) {
  TemplateId q1 =
      Register("SELECT wi_s_symb AS symb FROM watch_item WHERE wi_wl_id = 1");
  TemplateId q2 = Register("SELECT s_num_out FROM security WHERE s_symb = 'X'");
  TemplateId q3 = Register(
      "SELECT dm_close FROM daily_market WHERE dm_s_symb = 'X' AND dm_date = "
      "5");
  DriveLoopWorkload(q1, q2, q3, 3, /*with_q3=*/true);

  GraphExtractor extractor(GraphExtractor::Options{});
  auto graphs = extractor.Extract(transitions_, mapper_, registry_);
  ASSERT_FALSE(graphs.empty());

  // Some graph must contain the full loop with q3 marked loop-constant.
  bool found = false;
  for (const auto& g : graphs) {
    if (g.ContainsNode(q1) && g.ContainsNode(q2) && g.ContainsNode(q3) &&
        g.loop_marked.count(q3) > 0 && g.loop_marked.count(q2) == 0) {
      found = true;
      EXPECT_EQ(g.RoleOf(q1), NodeRole::kDependency);
      EXPECT_EQ(g.RoleOf(q2), NodeRole::kPredicted);
      EXPECT_EQ(g.RoleOf(q3), NodeRole::kLoopConstant);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ExtractorTest, LoopConstantsDisabledRejectsLoop) {
  TemplateId q1 =
      Register("SELECT wi_s_symb AS symb FROM watch_item WHERE wi_wl_id = 1");
  TemplateId q2 = Register("SELECT s_num_out FROM security WHERE s_symb = 'X'");
  TemplateId q3 = Register(
      "SELECT dm_close FROM daily_market WHERE dm_s_symb = 'X' AND dm_date = "
      "5");
  DriveLoopWorkload(q1, q2, q3, 3, true);

  GraphExtractor::Options options;
  options.enable_loop_constants = false;  // the Scalpel limitation
  GraphExtractor extractor(options);
  auto graphs = extractor.Extract(transitions_, mapper_, registry_);
  for (const auto& g : graphs) {
    EXPECT_TRUE(g.loop_marked.empty());
    EXPECT_FALSE(g.ContainsNode(q3));
  }
}

TEST_F(ExtractorTest, LoopsDisabledStillExtractsChains) {
  TemplateId q1 =
      Register("SELECT wi_s_symb AS symb FROM watch_item WHERE wi_wl_id = 1");
  TemplateId q2 = Register("SELECT s_num_out FROM security WHERE s_symb = 'X'");
  DriveLoopWorkload(q1, q2, 0, 3, false);

  GraphExtractor::Options options;
  options.enable_loops = false;  // Apollo
  GraphExtractor extractor(options);
  auto graphs = extractor.Extract(transitions_, mapper_, registry_);
  bool found = false;
  for (const auto& g : graphs) {
    if (g.ContainsNode(q1) && g.ContainsNode(q2)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ExtractorTest, SiblingsMergeIntoOneGraph) {
  // Q1's result feeds both Q2 and Q3 (no loop constants): one graph with
  // both siblings (Fig. 6's graph A), not two fragments.
  TemplateId q1 = Register("SELECT page_id, page_latest FROM page WHERE "
                           "page_title = 'x'");
  TemplateId q2 =
      Register("SELECT pr_type FROM page_restrictions WHERE pr_page = 3");
  TemplateId q3 = Register(
      "SELECT rev_id FROM revision WHERE rev_page = 3 AND rev_id = 4");
  for (int inv = 0; inv < 4; ++inv) {
    transitions_.Observe(q1, t_);
    mapper_.ObserveQuery(q1, {Value::String("p" + std::to_string(inv))});
    sql::ResultSet rs({"page_id", "page_latest"});
    rs.AddRow({Value::Int(100 + inv), Value::Int(500 + inv)});
    mapper_.ObserveResult(q1, rs);
    t_ += 2 * kMs;
    transitions_.Observe(q2, t_);
    mapper_.ObserveQuery(q2, {Value::Int(100 + inv)});
    t_ += 2 * kMs;
    transitions_.Observe(q3, t_);
    mapper_.ObserveQuery(q3, {Value::Int(100 + inv), Value::Int(500 + inv)});
    t_ += 400 * kMs;
  }
  GraphExtractor extractor(GraphExtractor::Options{});
  auto graphs = extractor.Extract(transitions_, mapper_, registry_);
  bool merged = false;
  for (const auto& g : graphs) {
    if (g.ContainsNode(q1) && g.ContainsNode(q2) && g.ContainsNode(q3) &&
        g.loop_marked.empty()) {
      merged = true;
    }
  }
  EXPECT_TRUE(merged);
}

TEST_F(ExtractorTest, WriteTemplatesNeverPredicted) {
  TemplateId q1 = Register("SELECT a FROM t WHERE b = 1");
  TemplateId q2 = Register("UPDATE t SET a = 1 WHERE b = 2");
  for (int inv = 0; inv < 4; ++inv) {
    transitions_.Observe(q1, t_);
    mapper_.ObserveQuery(q1, {Value::Int(inv)});
    sql::ResultSet rs({"a"});
    rs.AddRow({Value::Int(inv * 7)});
    mapper_.ObserveResult(q1, rs);
    t_ += 2 * kMs;
    transitions_.Observe(q2, t_);
    mapper_.ObserveQuery(q2, {Value::Int(1), Value::Int(inv * 7)});
    t_ += 400 * kMs;
  }
  GraphExtractor extractor(GraphExtractor::Options{});
  auto graphs = extractor.Extract(transitions_, mapper_, registry_);
  for (const auto& g : graphs) EXPECT_FALSE(g.ContainsNode(q2));
}

TEST_F(ExtractorTest, UncorrelatedMappingsIgnored) {
  // A confirmed value match without temporal correlation must not produce
  // a graph (the queries are minutes apart).
  TemplateId q1 = Register("SELECT a FROM t WHERE b = 1");
  TemplateId q2 = Register("SELECT c FROM u WHERE d = 10");
  for (int inv = 0; inv < 4; ++inv) {
    transitions_.Observe(q1, t_);
    mapper_.ObserveQuery(q1, {Value::Int(inv)});
    sql::ResultSet rs({"a"});
    rs.AddRow({Value::Int(inv * 3)});
    mapper_.ObserveResult(q1, rs);
    t_ += 60 * 1000 * kMs;  // a minute later: outside delta_t
    transitions_.Observe(q2, t_);
    mapper_.ObserveQuery(q2, {Value::Int(inv * 3)});
    t_ += 60 * 1000 * kMs;
  }
  GraphExtractor extractor(GraphExtractor::Options{});
  auto graphs = extractor.Extract(transitions_, mapper_, registry_);
  for (const auto& g : graphs) {
    EXPECT_FALSE(g.ContainsNode(q2));
  }
}

TEST_F(ExtractorTest, MinOccurrencesGate) {
  TemplateId q1 = Register("SELECT a FROM t WHERE b = 1");
  TemplateId q2 = Register("SELECT c FROM u WHERE d = 10");
  // Only one observation: below the extraction threshold.
  transitions_.Observe(q1, t_);
  mapper_.ObserveQuery(q1, {Value::Int(0)});
  sql::ResultSet rs({"a"});
  rs.AddRow({Value::Int(10)});
  mapper_.ObserveResult(q1, rs);
  t_ += 2 * kMs;
  transitions_.Observe(q2, t_);
  mapper_.ObserveQuery(q2, {Value::Int(10)});

  GraphExtractor extractor(GraphExtractor::Options{});
  EXPECT_TRUE(extractor.Extract(transitions_, mapper_, registry_).empty());
}

}  // namespace
}  // namespace chrono::core
