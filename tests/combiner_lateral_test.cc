// Lateral-union strategy (§4.2): aggregates, ORDER BY/LIMIT, induced
// ROW_NUMBER candidate keys, and the same-topological-height join.

#include <gtest/gtest.h>

#include "core/combiner_lateral.h"
#include "core/result_splitter.h"
#include "db/database.h"
#include "sql/template.h"

namespace chrono::core {
namespace {

using sql::Value;

class LateralCombinerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.catalog()
                    ->CreateTable("item",
                                  {db::ColumnDef{"i_id", Value::Type::kInt},
                                   db::ColumnDef{"i_seller", Value::Type::kInt},
                                   db::ColumnDef{"i_end", Value::Type::kInt}})
                    .ok());
    ASSERT_TRUE(db_.catalog()
                    ->CreateTable("bid",
                                  {db::ColumnDef{"b_i_id", Value::Type::kInt},
                                   db::ColumnDef{"b_amount",
                                                 Value::Type::kDouble}})
                    .ok());
    ASSERT_TRUE(db_.catalog()
                    ->CreateTable("feedback",
                                  {db::ColumnDef{"f_seller", Value::Type::kInt},
                                   db::ColumnDef{"f_rating", Value::Type::kInt},
                                   db::ColumnDef{"f_date", Value::Type::kInt}})
                    .ok());
    Exec("INSERT INTO item VALUES (1, 10, 5), (2, 11, 5), (3, 10, 5), "
         "(4, 12, 6)");
    Exec("INSERT INTO bid VALUES (1, 5.0), (1, 9.0), (2, 3.5), (3, 7.0), "
         "(3, 8.0), (3, 2.0)");
    Exec("INSERT INTO feedback VALUES (10, 4, 40), (10, 2, 10), (11, 5, 45), "
         "(12, 1, 50)");
  }

  sql::ResultSet Exec(const std::string& sql) {
    auto outcome = db_.ExecuteText(sql);
    EXPECT_TRUE(outcome.ok()) << sql << " -> " << outcome.status().ToString();
    return outcome.ok() ? outcome->result : sql::ResultSet();
  }

  TemplateId Register(const std::string& sql) {
    auto parsed = sql::AnalyzeQuery(sql);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    latest_[parsed->tmpl->id] = parsed->params;
    return registry_.Register(parsed->tmpl);
  }

  CombineInput Input(const DependencyGraph* g) {
    return CombineInput{g, &registry_, &latest_};
  }

  void VerifySplitAgainstDirect(const CombinedQuery& combined) {
    auto outcome = db_.ExecuteText(combined.sql);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString() << "\n"
                              << combined.sql;
    auto split = SplitResult(combined, outcome->result, registry_);
    ASSERT_TRUE(split.ok()) << split.status().ToString();
    ASSERT_FALSE(split->empty());
    for (const auto& entry : *split) {
      EXPECT_EQ(*entry.result, Exec(entry.key)) << entry.key;
    }
  }

  db::Database db_;
  TemplateRegistry registry_;
  std::map<TemplateId, std::vector<Value>> latest_;
};

TEST_F(LateralCombinerTest, AggregateChildEndToEnd) {
  // CloseAuctions shape: loop over items, max bid per item.
  TemplateId q1 = Register("SELECT i_id, i_seller FROM item WHERE i_end = 5");
  TemplateId q2 = Register("SELECT max(b_amount) FROM bid WHERE b_i_id = 1");
  DependencyGraph g;
  g.nodes = {q1, q2};
  g.param_counts = {{q1, 1}, {q2, 1}};
  g.edges.push_back({q1, q2, {{"i_id", 0}}});
  g.Normalize();

  ASSERT_TRUE(LateralUnionCombiner::CanHandle(Input(&g)));
  auto combined = LateralUnionCombiner::Combine(Input(&g));
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  EXPECT_NE(combined->sql.find("LATERAL"), std::string::npos);
  EXPECT_NE(combined->sql.find("row_number()"), std::string::npos);
  VerifySplitAgainstDirect(*combined);
}

TEST_F(LateralCombinerTest, PerLoopConstantAggregate) {
  // The paper's CloseAuctions extension: avg feedback in the last 30 days.
  TemplateId q1 = Register("SELECT i_id, i_seller FROM item WHERE i_end = 5");
  TemplateId q3 = Register(
      "SELECT avg(f_rating) FROM feedback WHERE f_seller = 10 AND f_date >= "
      "30");
  latest_[q3] = {Value::Int(10), Value::Int(30)};
  DependencyGraph g;
  g.nodes = {q1, q3};
  g.param_counts = {{q1, 1}, {q3, 2}};
  g.edges.push_back({q1, q3, {{"i_seller", 0}}});
  g.loop_marked.insert(q3);
  g.Normalize();

  auto combined = LateralUnionCombiner::Combine(Input(&g));
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  VerifySplitAgainstDirect(*combined);
}

TEST_F(LateralCombinerTest, OrderByLimitDriver) {
  // TradeStatus shape: the driver itself has ORDER BY/LIMIT.
  TemplateId q1 =
      Register("SELECT i_id FROM item WHERE i_end = 5 ORDER BY i_id DESC "
               "LIMIT 2");
  TemplateId q2 = Register("SELECT max(b_amount) FROM bid WHERE b_i_id = 1");
  DependencyGraph g;
  g.nodes = {q1, q2};
  g.param_counts = {{q1, 2}, {q2, 1}};
  g.edges.push_back({q1, q2, {{"i_id", 0}}});
  g.Normalize();

  auto combined = LateralUnionCombiner::Combine(Input(&g));
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  VerifySplitAgainstDirect(*combined);
}

TEST_F(LateralCombinerTest, SameHeightSiblingsJoinedByRowNumber) {
  // Diamond prefix: Q1 feeds Q2 and Q3 at the same topological height.
  TemplateId q1 = Register("SELECT i_id, i_seller FROM item WHERE i_end = 5");
  TemplateId q2 = Register("SELECT max(b_amount) FROM bid WHERE b_i_id = 1");
  TemplateId q3 = Register(
      "SELECT avg(f_rating) FROM feedback WHERE f_seller = 10");
  DependencyGraph g;
  g.nodes = {q1, q2, q3};
  g.param_counts = {{q1, 1}, {q2, 1}, {q3, 1}};
  g.edges.push_back({q1, q2, {{"i_id", 0}}});
  g.edges.push_back({q1, q3, {{"i_seller", 0}}});
  g.Normalize();

  auto combined = LateralUnionCombiner::Combine(Input(&g));
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  // The second same-height lateral must join on row numbers, not ON TRUE.
  size_t rn_join = combined->sql.find("rn = d");
  EXPECT_NE(rn_join, std::string::npos) << combined->sql;
  VerifySplitAgainstDirect(*combined);
}

TEST_F(LateralCombinerTest, RejectsStarSelect) {
  TemplateId q1 = Register("SELECT * FROM item WHERE i_end = 5");
  TemplateId q2 = Register("SELECT max(b_amount) FROM bid WHERE b_i_id = 1");
  DependencyGraph g;
  g.nodes = {q1, q2};
  g.param_counts = {{q1, 1}, {q2, 1}};
  g.edges.push_back({q1, q2, {{"i_id", 0}}});
  g.Normalize();
  EXPECT_FALSE(LateralUnionCombiner::CanHandle(Input(&g)));
}

TEST_F(LateralCombinerTest, StrategySelectionFallsBackToLateral) {
  TemplateId q1 = Register("SELECT i_id, i_seller FROM item WHERE i_end = 5");
  TemplateId q2 = Register("SELECT max(b_amount) FROM bid WHERE b_i_id = 1");
  DependencyGraph g;
  g.nodes = {q1, q2};
  g.param_counts = {{q1, 1}, {q2, 1}};
  g.edges.push_back({q1, q2, {{"i_id", 0}}});
  g.Normalize();
  auto combined = CombineGraph(Input(&g));
  ASSERT_TRUE(combined.ok());
  EXPECT_NE(combined->sql.find("LATERAL"), std::string::npos);
}

TEST_F(LateralCombinerTest, EmptyIterationsPreserved) {
  Exec("INSERT INTO item VALUES (9, 13, 5)");  // item with no bids
  TemplateId q1 = Register("SELECT i_id, i_seller FROM item WHERE i_end = 5");
  TemplateId q2 = Register("SELECT b_amount FROM bid WHERE b_i_id = 1");
  DependencyGraph g;
  g.nodes = {q1, q2};
  g.param_counts = {{q1, 1}, {q2, 1}};
  g.edges.push_back({q1, q2, {{"i_id", 0}}});
  g.Normalize();

  auto combined = LateralUnionCombiner::Combine(Input(&g));
  ASSERT_TRUE(combined.ok());
  auto outcome = db_.ExecuteText(combined->sql);
  ASSERT_TRUE(outcome.ok());
  auto split = SplitResult(*combined, outcome->result, registry_);
  ASSERT_TRUE(split.ok());
  // Q1 has 4 matching items -> 1 + 4 entries, one of them empty.
  ASSERT_EQ(split->size(), 5u);
  bool empty_found = false;
  for (const auto& entry : *split) {
    EXPECT_EQ(*entry.result, Exec(entry.key)) << entry.key;
    if (entry.result->empty() && entry.tmpl != q1) empty_found = true;
  }
  EXPECT_TRUE(empty_found);
}

}  // namespace
}  // namespace chrono::core
