// Tests for per-request tracing: the mutex-free TraceRing (wraparound,
// attribution fields, concurrent push/snapshot) and the ChronoServer
// integration that fills it (stage spans, outcomes, prediction-hit
// attribution through the metrics registry).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/server.h"

namespace chrono::obs {
namespace {

std::shared_ptr<const RequestTrace> MakeTrace(uint64_t id) {
  auto t = std::make_shared<RequestTrace>();
  t->id = id;
  t->sql = "SELECT " + std::to_string(id);
  return t;
}

TEST(TraceRing, KeepsMostRecentFirstBeforeWrap) {
  TraceRing ring(8);
  for (uint64_t i = 1; i <= 5; ++i) ring.Push(MakeTrace(i));
  auto got = ring.Snapshot();
  ASSERT_EQ(got.size(), 5u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i]->id, 5 - i);
  }
  EXPECT_EQ(ring.total_pushed(), 5u);
}

TEST(TraceRing, WrapsAroundKeepingTheNewest) {
  TraceRing ring(4);
  for (uint64_t i = 1; i <= 10; ++i) ring.Push(MakeTrace(i));
  auto got = ring.Snapshot();
  ASSERT_EQ(got.size(), 4u);
  // 10, 9, 8, 7 — the oldest six were overwritten.
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i]->id, 10 - i);
  }
  EXPECT_EQ(ring.total_pushed(), 10u);
  EXPECT_EQ(ring.capacity(), 4u);
}

TEST(TraceRing, PreservesAttributionAndSpans) {
  TraceRing ring(2);
  auto t = std::make_shared<RequestTrace>();
  t->id = 42;
  t->client = 7;
  t->tmpl = 99;
  t->outcome = TraceOutcome::kCacheHit;
  t->prefetch_plan = 13;
  t->prefetch_src = 88;
  t->spans.push_back({Stage::kAnalyze, 0, 3});
  t->spans.push_back({Stage::kCacheLookup, 3, 1});
  ring.Push(std::move(t));

  auto got = ring.Snapshot();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0]->prefetch_plan, 13u);
  EXPECT_EQ(got[0]->prefetch_src, 88u);
  EXPECT_EQ(got[0]->outcome, TraceOutcome::kCacheHit);
  ASSERT_EQ(got[0]->spans.size(), 2u);
  EXPECT_EQ(got[0]->spans[0].stage, Stage::kAnalyze);
  EXPECT_EQ(got[0]->spans[1].dur_us, 1u);
}

// The TSan target: concurrent pushers racing a snapshotting reader. Every
// trace a snapshot returns must be complete (the shared_ptr swap publishes
// whole objects), and nothing may crash or leak at wrap.
TEST(TraceRing, ConcurrentPushAndSnapshot) {
  TraceRing ring(16);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& t : ring.Snapshot()) {
        ASSERT_NE(t, nullptr);
        ASSERT_EQ(t->sql, "SELECT " + std::to_string(t->id));
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&ring, w] {
      for (uint64_t i = 0; i < 20'000; ++i) {
        ring.Push(MakeTrace(static_cast<uint64_t>(w) * 1'000'000 + i));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(ring.total_pushed(), 80'000u);
  EXPECT_EQ(ring.Snapshot().size(), 16u);
}

// ---- TailReservoir ------------------------------------------------------

std::shared_ptr<const RequestTrace> MakeTimed(uint64_t id, uint64_t total_us,
                                              bool forced = false) {
  auto t = std::make_shared<RequestTrace>();
  t->id = id;
  t->total_us = total_us;
  t->forced = forced;
  return t;
}

TEST(TailReservoir, KeepsTopKSlowestPerWindow) {
  TailReservoir::Options opts;
  opts.top_k = 3;
  opts.forced_capacity = 0;
  TailReservoir tail(opts);
  for (uint64_t i = 10; i >= 1; --i) {
    tail.Offer(MakeTimed(i, i * 100), /*now_us=*/1000);
  }
  auto got = tail.Snapshot();
  ASSERT_EQ(got.size(), 3u);
  // Slowest first: 1000, 900, 800.
  EXPECT_EQ(got[0]->total_us, 1000u);
  EXPECT_EQ(got[1]->total_us, 900u);
  EXPECT_EQ(got[2]->total_us, 800u);
  EXPECT_EQ(tail.offered(), 10u);
  EXPECT_LT(tail.admitted(), tail.offered());
}

TEST(TailReservoir, AdmissionFloorGatesFastTracesOnceWindowIsFull) {
  TailReservoir::Options opts;
  opts.top_k = 2;
  opts.forced_capacity = 0;
  TailReservoir tail(opts);
  // Below K entries: everything might be admitted (floor is 0).
  EXPECT_TRUE(tail.MightAdmit(1, /*forced=*/false));
  tail.Offer(MakeTimed(1, 500), 1000);
  tail.Offer(MakeTimed(2, 900), 1000);
  // Window now holds K traces; the floor is the K-th slowest (500).
  EXPECT_FALSE(tail.MightAdmit(400, false));
  EXPECT_FALSE(tail.MightAdmit(500, false));  // must beat, not match
  EXPECT_TRUE(tail.MightAdmit(501, false));
  // Forced traces bypass the floor entirely.
  EXPECT_TRUE(tail.MightAdmit(1, /*forced=*/true));
}

TEST(TailReservoir, ForcedAndOverThresholdTracesAlwaysRetained) {
  TailReservoir::Options opts;
  opts.top_k = 1;
  opts.threshold_us = 10'000;
  opts.forced_capacity = 4;
  TailReservoir tail(opts);
  tail.Offer(MakeTimed(1, 50'000), 1000);  // occupies the only top-K slot
  tail.Offer(MakeTimed(2, 5, /*forced=*/true), 1000);   // client-flagged
  tail.Offer(MakeTimed(3, 20'000), 1000);  // over threshold, beats slot too
  auto got = tail.Snapshot();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0]->id, 1u);  // 50000 — threshold put it in the forced ring
  EXPECT_EQ(got[1]->id, 3u);
  EXPECT_EQ(got[2]->id, 2u);  // the forced fast trace survives
}

TEST(TailReservoir, WindowRotationRetiresOldGenerations) {
  TailReservoir::Options opts;
  opts.top_k = 2;
  opts.window_us = 1000;
  opts.forced_capacity = 0;
  TailReservoir tail(opts);
  tail.Offer(MakeTimed(1, 700), 100);
  // One window later: generation rotates, old top-K still visible.
  tail.Offer(MakeTimed(2, 300), 1200);
  auto got = tail.Snapshot();
  ASSERT_EQ(got.size(), 2u);
  // A fresh window also resets the admission floor.
  EXPECT_TRUE(tail.MightAdmit(10, false));
  // Two quiet windows later both generations are stale and dropped.
  tail.Offer(MakeTimed(3, 100), 5000);
  got = tail.Snapshot();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0]->id, 3u);
}

TEST(TailReservoir, SnapshotDeduplicatesForcedAndHeapCopies) {
  TailReservoir::Options opts;
  opts.top_k = 4;
  opts.threshold_us = 100;
  opts.forced_capacity = 4;
  TailReservoir tail(opts);
  // Over threshold AND slow enough for the heap: one snapshot entry.
  tail.Offer(MakeTimed(7, 5000), 1000);
  auto got = tail.Snapshot();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0]->id, 7u);
}

// ---- ChronoServer integration ------------------------------------------

class ServerTraceTest : public ::testing::Test {
 protected:
  ServerTraceTest() {
    auto setup = [&](const std::string& sql) {
      auto r = db_.ExecuteText(sql);
      EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    };
    setup("CREATE TABLE t (id INT, v TEXT)");
    for (int i = 0; i < 50; ++i) {
      setup("INSERT INTO t (id, v) VALUES (" + std::to_string(i) + ", 'v" +
            std::to_string(i) + "')");
    }
  }

  db::Database db_;
};

TEST_F(ServerTraceTest, RequestsProduceTracesWithStageSpans) {
  runtime::ServerConfig config;
  config.workers = 2;
  config.trace_capacity = 32;
  runtime::ChronoServer server(&db_, config);

  ASSERT_TRUE(server.Submit(1, "SELECT v FROM t WHERE id = 3").get().ok());
  ASSERT_TRUE(server.Submit(1, "SELECT v FROM t WHERE id = 3").get().ok());
  ASSERT_TRUE(
      server.Submit(1, "UPDATE t SET v = 'x' WHERE id = 3").get().ok());
  ASSERT_FALSE(server.Submit(1, "SELECT FROM WHERE").get().ok());

  ASSERT_NE(server.traces(), nullptr);
  auto traces = server.traces()->Snapshot();
  ASSERT_EQ(traces.size(), 4u);  // newest first
  EXPECT_EQ(traces[0]->outcome, TraceOutcome::kError);
  EXPECT_EQ(traces[1]->outcome, TraceOutcome::kWrite);
  EXPECT_EQ(traces[2]->outcome, TraceOutcome::kCacheHit);
  EXPECT_EQ(traces[3]->outcome, TraceOutcome::kRemotePlain);

  // The first (plain) read went analyze -> learn -> cache-miss -> db.
  bool saw_analyze = false, saw_db = false;
  for (const TraceSpan& s : traces[3]->spans) {
    saw_analyze |= s.stage == Stage::kAnalyze;
    saw_db |= s.stage == Stage::kDbExecute;
  }
  EXPECT_TRUE(saw_analyze);
  EXPECT_TRUE(saw_db);
  EXPECT_FALSE(traces[3]->sql.empty());
  EXPECT_NE(traces[3]->tmpl, 0u);
  // The cache hit never reached the database.
  for (const TraceSpan& s : traces[2]->spans) {
    EXPECT_NE(s.stage, Stage::kDbExecute);
  }

  // The same requests also landed in the stage histograms.
  RegistrySnapshot snap = server.registry()->Snapshot();
  const MetricSnapshot* analyze =
      snap.Find("chrono_stage_latency_ns", {{"stage", "analyze"}});
  ASSERT_NE(analyze, nullptr);
  EXPECT_GE(analyze->histogram.count, 4u);
  const MetricSnapshot* reads =
      snap.Find("chrono_request_latency_ns", {{"op", "read"}});
  ASSERT_NE(reads, nullptr);
  EXPECT_EQ(reads->histogram.count, 3u);  // 2 ok reads + 1 parse error
}

TEST_F(ServerTraceTest, TracingDisabledWithZeroCapacity) {
  runtime::ServerConfig config;
  config.workers = 1;
  config.trace_capacity = 0;
  runtime::ChronoServer server(&db_, config);
  ASSERT_TRUE(server.Submit(1, "SELECT v FROM t WHERE id = 1").get().ok());
  EXPECT_EQ(server.traces(), nullptr);
}

TEST_F(ServerTraceTest, TraceSqlIsTruncated) {
  runtime::ServerConfig config;
  config.workers = 1;
  config.trace_sql_bytes = 16;
  runtime::ChronoServer server(&db_, config);
  ASSERT_TRUE(
      server.Submit(1, "SELECT v FROM t WHERE id = 12345678").get().ok());
  auto traces = server.traces()->Snapshot();
  ASSERT_FALSE(traces.empty());
  EXPECT_LE(traces[0]->sql.size(), 16u);
}

TEST_F(ServerTraceTest, PrefetchedHitsCarryAttribution) {
  runtime::ServerConfig config;
  config.workers = 2;
  config.extract_every = 2;
  config.trace_capacity = 512;
  runtime::ChronoServer server(&db_, config);

  // Same training pattern as runtime_test: "SELECT id" then a dependent
  // "SELECT v" for a small repeating key set, until the learned combined
  // plans prefetch the follow-up and the hit gets attributed.
  for (int round = 0; round < 24; ++round) {
    int id = round % 4;
    ASSERT_TRUE(
        server.Submit(1, "SELECT id FROM t WHERE id = " + std::to_string(id))
            .get()
            .ok());
    ASSERT_TRUE(
        server.Submit(1, "SELECT v FROM t WHERE id = " + std::to_string(id))
            .get()
            .ok());
  }

  runtime::ServerMetrics m = server.metrics();
  ASSERT_GT(m.predictions_cached, 0u)
      << "training never produced a combined prefetch";
  EXPECT_GT(m.prefetched_hits, 0u)
      << "no cache hit landed on a prefetched entry";

  // Attribution surfaces in both the traces and the per-edge counters.
  bool traced_attribution = false;
  for (const auto& t : server.traces()->Snapshot()) {
    if (t->prefetch_plan != 0) {
      traced_attribution = true;
      break;
    }
  }
  EXPECT_TRUE(traced_attribution);

  RegistrySnapshot snap = server.registry()->Snapshot();
  double attributed = 0;
  for (const MetricSnapshot& ms : snap.metrics) {
    if (ms.name == "chrono_prediction_hits_total") attributed += ms.value;
  }
  EXPECT_DOUBLE_EQ(attributed, static_cast<double>(m.prefetched_hits));
}

}  // namespace
}  // namespace chrono::obs
