// Core executor behaviour: scans, filters, joins, projection, DML.

#include <gtest/gtest.h>

#include "db/database.h"

namespace chrono::db {
namespace {

using sql::ResultSet;
using sql::Value;

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto users = db_.catalog()->CreateTable(
        "users", {ColumnDef{"id", Value::Type::kInt},
                  ColumnDef{"name", Value::Type::kString},
                  ColumnDef{"age", Value::Type::kInt}});
    ASSERT_TRUE(users.ok());
    Exec("INSERT INTO users VALUES (1, 'alice', 30), (2, 'bob', 25), "
         "(3, 'carol', 35)");
    auto orders = db_.catalog()->CreateTable(
        "orders", {ColumnDef{"oid", Value::Type::kInt},
                   ColumnDef{"uid", Value::Type::kInt},
                   ColumnDef{"amount", Value::Type::kDouble}});
    ASSERT_TRUE(orders.ok());
    Exec("INSERT INTO orders VALUES (100, 1, 9.5), (101, 1, 20.0), "
         "(102, 3, 7.25)");
  }

  ResultSet Exec(const std::string& sql) {
    auto outcome = db_.ExecuteText(sql);
    EXPECT_TRUE(outcome.ok()) << sql << " -> " << outcome.status().ToString();
    if (!outcome.ok()) return ResultSet();
    return outcome->result;
  }

  Status ExecStatus(const std::string& sql) {
    auto outcome = db_.ExecuteText(sql);
    return outcome.ok() ? Status::OK() : outcome.status();
  }

  Database db_;
};

TEST_F(ExecutorTest, SimpleProjection) {
  ResultSet rs = Exec("SELECT name FROM users WHERE id = 2");
  ASSERT_EQ(rs.row_count(), 1u);
  EXPECT_EQ(rs.columns(), (std::vector<std::string>{"name"}));
  EXPECT_EQ(rs.At(0, "name"), Value::String("bob"));
}

TEST_F(ExecutorTest, SelectStarHidesRowid) {
  ResultSet rs = Exec("SELECT * FROM users WHERE id = 1");
  EXPECT_EQ(rs.columns(),
            (std::vector<std::string>{"id", "name", "age"}));
}

TEST_F(ExecutorTest, RowidPseudoColumnSelectable) {
  ResultSet rs = Exec("SELECT __rowid, id FROM users");
  ASSERT_EQ(rs.row_count(), 3u);
  EXPECT_EQ(rs.At(0, "__rowid"), Value::Int(1));
  EXPECT_EQ(rs.At(2, "__rowid"), Value::Int(3));
}

TEST_F(ExecutorTest, WhereComparisons) {
  EXPECT_EQ(Exec("SELECT id FROM users WHERE age > 26").row_count(), 2u);
  EXPECT_EQ(Exec("SELECT id FROM users WHERE age >= 30").row_count(), 2u);
  EXPECT_EQ(Exec("SELECT id FROM users WHERE age < 30").row_count(), 1u);
  EXPECT_EQ(Exec("SELECT id FROM users WHERE age <> 25").row_count(), 2u);
  EXPECT_EQ(Exec("SELECT id FROM users WHERE name = 'alice'").row_count(), 1u);
}

TEST_F(ExecutorTest, AndOrNot) {
  EXPECT_EQ(
      Exec("SELECT id FROM users WHERE age > 20 AND age < 31").row_count(),
      2u);
  EXPECT_EQ(
      Exec("SELECT id FROM users WHERE id = 1 OR id = 3").row_count(), 2u);
  EXPECT_EQ(Exec("SELECT id FROM users WHERE NOT (id = 1)").row_count(), 2u);
}

TEST_F(ExecutorTest, InListAndBetween) {
  EXPECT_EQ(Exec("SELECT id FROM users WHERE id IN (1, 3)").row_count(), 2u);
  EXPECT_EQ(Exec("SELECT id FROM users WHERE id NOT IN (1, 3)").row_count(),
            1u);
  EXPECT_EQ(
      Exec("SELECT id FROM users WHERE age BETWEEN 25 AND 30").row_count(),
      2u);
}

TEST_F(ExecutorTest, Arithmetic) {
  ResultSet rs = Exec("SELECT age + 1, age * 2, age - 5, age / 5 FROM users "
                      "WHERE id = 2");
  EXPECT_EQ(rs.row(0)[0], Value::Int(26));
  EXPECT_EQ(rs.row(0)[1], Value::Int(50));
  EXPECT_EQ(rs.row(0)[2], Value::Int(20));
  EXPECT_EQ(rs.row(0)[3], Value::Int(5));
}

TEST_F(ExecutorTest, DivisionByZeroFails) {
  EXPECT_FALSE(ExecStatus("SELECT 1 / 0").ok());
}

TEST_F(ExecutorTest, SelectWithoutFrom) {
  ResultSet rs = Exec("SELECT 1 + 2 AS three");
  ASSERT_EQ(rs.row_count(), 1u);
  EXPECT_EQ(rs.At(0, "three"), Value::Int(3));
}

TEST_F(ExecutorTest, InnerJoin) {
  ResultSet rs = Exec(
      "SELECT name, amount FROM users JOIN orders ON users.id = orders.uid");
  EXPECT_EQ(rs.row_count(), 3u);  // bob has no orders
}

TEST_F(ExecutorTest, LeftJoinKeepsUnmatchedWithNulls) {
  ResultSet rs = Exec(
      "SELECT name, oid FROM users LEFT JOIN orders ON users.id = orders.uid");
  EXPECT_EQ(rs.row_count(), 4u);  // alice x2, bob(null), carol
  bool bob_null = false;
  for (size_t i = 0; i < rs.row_count(); ++i) {
    if (rs.At(i, "name") == Value::String("bob")) {
      bob_null = rs.At(i, "oid").is_null();
    }
  }
  EXPECT_TRUE(bob_null);
}

TEST_F(ExecutorTest, CrossJoin) {
  ResultSet rs = Exec("SELECT users.id FROM users, orders");
  EXPECT_EQ(rs.row_count(), 9u);
}

TEST_F(ExecutorTest, JoinWithResidualCondition) {
  ResultSet rs = Exec(
      "SELECT name, oid FROM users JOIN orders ON users.id = orders.uid AND "
      "orders.amount > 10");
  ASSERT_EQ(rs.row_count(), 1u);
  EXPECT_EQ(rs.At(0, "oid"), Value::Int(101));
}

TEST_F(ExecutorTest, TableAliases) {
  ResultSet rs = Exec(
      "SELECT u.name FROM users AS u JOIN orders AS o ON u.id = o.uid WHERE "
      "o.amount < 8");
  ASSERT_EQ(rs.row_count(), 1u);
  EXPECT_EQ(rs.At(0, "name"), Value::String("carol"));
}

TEST_F(ExecutorTest, OrderByAscDesc) {
  ResultSet rs = Exec("SELECT id FROM users ORDER BY age DESC");
  ASSERT_EQ(rs.row_count(), 3u);
  EXPECT_EQ(rs.row(0)[0], Value::Int(3));
  EXPECT_EQ(rs.row(2)[0], Value::Int(2));
}

TEST_F(ExecutorTest, OrderBySourceColumnNotInOutput) {
  ResultSet rs = Exec("SELECT name FROM users ORDER BY age");
  EXPECT_EQ(rs.At(0, "name"), Value::String("bob"));
}

TEST_F(ExecutorTest, Limit) {
  EXPECT_EQ(Exec("SELECT id FROM users ORDER BY id LIMIT 2").row_count(), 2u);
  EXPECT_EQ(Exec("SELECT id FROM users LIMIT 0").row_count(), 0u);
}

TEST_F(ExecutorTest, Distinct) {
  Exec("INSERT INTO users VALUES (4, 'alice', 30)");
  EXPECT_EQ(Exec("SELECT DISTINCT name FROM users").row_count(), 3u);
}

TEST_F(ExecutorTest, Aggregates) {
  ResultSet rs = Exec(
      "SELECT count(*), sum(amount), avg(amount), min(amount), max(amount) "
      "FROM orders");
  ASSERT_EQ(rs.row_count(), 1u);
  EXPECT_EQ(rs.row(0)[0], Value::Int(3));
  EXPECT_NEAR(rs.row(0)[1].AsDouble(), 36.75, 1e-9);
  EXPECT_NEAR(rs.row(0)[2].AsDouble(), 12.25, 1e-9);
  EXPECT_NEAR(rs.row(0)[3].AsDouble(), 7.25, 1e-9);
  EXPECT_NEAR(rs.row(0)[4].AsDouble(), 20.0, 1e-9);
}

TEST_F(ExecutorTest, AggregateOverEmptyInput) {
  ResultSet rs = Exec("SELECT count(*), max(amount) FROM orders WHERE oid = 0");
  ASSERT_EQ(rs.row_count(), 1u);
  EXPECT_EQ(rs.row(0)[0], Value::Int(0));
  EXPECT_TRUE(rs.row(0)[1].is_null());
}

TEST_F(ExecutorTest, GroupBy) {
  ResultSet rs =
      Exec("SELECT uid, count(*) AS n FROM orders GROUP BY uid");
  EXPECT_EQ(rs.row_count(), 2u);
  for (size_t i = 0; i < rs.row_count(); ++i) {
    if (rs.At(i, "uid") == Value::Int(1)) {
      EXPECT_EQ(rs.At(i, "n"), Value::Int(2));
    } else {
      EXPECT_EQ(rs.At(i, "n"), Value::Int(1));
    }
  }
}

TEST_F(ExecutorTest, GroupByWithHaving) {
  ResultSet rs = Exec(
      "SELECT uid FROM orders GROUP BY uid HAVING count(*) > 1");
  ASSERT_EQ(rs.row_count(), 1u);
  EXPECT_EQ(rs.At(0, "uid"), Value::Int(1));
}

TEST_F(ExecutorTest, GroupByEmptyInputYieldsNoGroups) {
  ResultSet rs =
      Exec("SELECT uid, count(*) FROM orders WHERE oid = 0 GROUP BY uid");
  EXPECT_EQ(rs.row_count(), 0u);
}

TEST_F(ExecutorTest, RowNumberProjection) {
  ResultSet rs = Exec("SELECT name, row_number() OVER () AS rn FROM users");
  ASSERT_EQ(rs.row_count(), 3u);
  EXPECT_EQ(rs.At(0, "rn"), Value::Int(1));
  EXPECT_EQ(rs.At(2, "rn"), Value::Int(3));
}

TEST_F(ExecutorTest, ScalarFunctions) {
  ResultSet rs = Exec(
      "SELECT abs(-5), coalesce(NULL, 7), length('abc'), concat('a', 'b') "
      "FROM users WHERE id = 1");
  EXPECT_EQ(rs.row(0)[0], Value::Int(5));
  EXPECT_EQ(rs.row(0)[1], Value::Int(7));
  EXPECT_EQ(rs.row(0)[2], Value::Int(3));
  EXPECT_EQ(rs.row(0)[3], Value::String("ab"));
}

TEST_F(ExecutorTest, IsNullPredicate) {
  Exec("INSERT INTO orders VALUES (103, 2, NULL)");
  EXPECT_EQ(Exec("SELECT oid FROM orders WHERE amount IS NULL").row_count(),
            1u);
  EXPECT_EQ(
      Exec("SELECT oid FROM orders WHERE amount IS NOT NULL").row_count(),
      3u);
}

TEST_F(ExecutorTest, NullNeverEquals) {
  Exec("INSERT INTO orders VALUES (104, 4, NULL)");
  // NULL = NULL is NULL (not true) under SQL semantics.
  EXPECT_EQ(Exec("SELECT oid FROM orders WHERE amount = NULL").row_count(),
            0u);
}

TEST_F(ExecutorTest, UpdateChangesMatchingRows) {
  auto outcome = db_.ExecuteText("UPDATE users SET age = 40 WHERE id = 1");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->affected_rows, 1);
  EXPECT_EQ(outcome->tables_written, (std::vector<std::string>{"users"}));
  EXPECT_EQ(Exec("SELECT age FROM users WHERE id = 1").row(0)[0],
            Value::Int(40));
}

TEST_F(ExecutorTest, UpdateSelfReferencingExpression) {
  Exec("UPDATE users SET age = age + 1 WHERE id = 2");
  EXPECT_EQ(Exec("SELECT age FROM users WHERE id = 2").row(0)[0],
            Value::Int(26));
}

TEST_F(ExecutorTest, DeleteRemovesRows) {
  auto outcome = db_.ExecuteText("DELETE FROM orders WHERE uid = 1");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->affected_rows, 2);
  EXPECT_EQ(Exec("SELECT oid FROM orders").row_count(), 1u);
}

TEST_F(ExecutorTest, InsertReportsAffectedRows) {
  auto outcome =
      db_.ExecuteText("INSERT INTO users VALUES (7, 'g', 1), (8, 'h', 2)");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->affected_rows, 2);
}

TEST_F(ExecutorTest, InsertWithColumnListFillsNulls) {
  Exec("INSERT INTO users (id, name) VALUES (9, 'i')");
  ResultSet rs = Exec("SELECT age FROM users WHERE id = 9");
  EXPECT_TRUE(rs.row(0)[0].is_null());
}

TEST_F(ExecutorTest, UnknownTableFails) {
  EXPECT_FALSE(ExecStatus("SELECT x FROM missing").ok());
  EXPECT_FALSE(ExecStatus("INSERT INTO missing VALUES (1)").ok());
  EXPECT_FALSE(ExecStatus("UPDATE missing SET a = 1").ok());
  EXPECT_FALSE(ExecStatus("DELETE FROM missing").ok());
}

TEST_F(ExecutorTest, UnknownColumnFails) {
  EXPECT_FALSE(ExecStatus("SELECT nope FROM users").ok());
  EXPECT_FALSE(ExecStatus("SELECT id FROM users WHERE nope = 1").ok());
}

TEST_F(ExecutorTest, UnboundParameterFails) {
  EXPECT_FALSE(ExecStatus("SELECT id FROM users WHERE id = ?").ok());
}

TEST_F(ExecutorTest, ReadsAreTracked) {
  auto outcome = db_.ExecuteText(
      "SELECT name FROM users JOIN orders ON users.id = orders.uid");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->tables_read,
            (std::vector<std::string>{"orders", "users"}));
}

TEST_F(ExecutorTest, StatsCountRows) {
  auto outcome = db_.ExecuteText("SELECT id FROM users");
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome->stats.rows_scanned, 3u);
}

TEST_F(ExecutorTest, IndexProbeScansFewerRows) {
  // Build a bigger table; equality lookup must not scan everything.
  for (int i = 0; i < 200; ++i) {
    Exec("INSERT INTO orders VALUES (" + std::to_string(200 + i) + ", 5, 1.0)");
  }
  auto full = db_.ExecuteText("SELECT oid FROM orders WHERE amount > 100");
  auto point = db_.ExecuteText("SELECT oid FROM orders WHERE oid = 250");
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(point.ok());
  EXPECT_LT(point->stats.rows_scanned, 10u);
  EXPECT_GT(full->stats.rows_scanned, 100u);
}


TEST_F(ExecutorTest, StringFunctions) {
  ResultSet rs = Exec(
      "SELECT upper('abC'), lower('AbC'), substr('hello', 2, 3), "
      "substr('hello', 4) FROM users WHERE id = 1");
  EXPECT_EQ(rs.row(0)[0], Value::String("ABC"));
  EXPECT_EQ(rs.row(0)[1], Value::String("abc"));
  EXPECT_EQ(rs.row(0)[2], Value::String("ell"));
  EXPECT_EQ(rs.row(0)[3], Value::String("lo"));
}

TEST_F(ExecutorTest, SubstrEdgeCases) {
  ResultSet rs = Exec(
      "SELECT substr('abc', 0, 2), substr('abc', 9), substr('abc', 2, 0) "
      "FROM users WHERE id = 1");
  EXPECT_EQ(rs.row(0)[0], Value::String("ab"));  // start clamps to 1
  EXPECT_EQ(rs.row(0)[1], Value::String(""));
  EXPECT_EQ(rs.row(0)[2], Value::String(""));
}

TEST_F(ExecutorTest, NumericFunctions) {
  ResultSet rs = Exec(
      "SELECT mod(7, 3), round(2.5), floor(2.9), ceil(2.1) FROM users "
      "WHERE id = 1");
  EXPECT_EQ(rs.row(0)[0], Value::Int(1));
  EXPECT_EQ(rs.row(0)[1], Value::Int(3));
  EXPECT_EQ(rs.row(0)[2], Value::Int(2));
  EXPECT_EQ(rs.row(0)[3], Value::Int(3));
}

TEST_F(ExecutorTest, FunctionsPropagateNull) {
  ResultSet rs = Exec(
      "SELECT upper(NULL), substr(NULL, 1), mod(NULL, 2), round(NULL) FROM "
      "users WHERE id = 1");
  for (const auto& v : rs.row(0)) EXPECT_TRUE(v.is_null());
}

TEST_F(ExecutorTest, ModByZeroFails) {
  EXPECT_FALSE(ExecStatus("SELECT mod(3, 0)").ok());
}


TEST_F(ExecutorTest, CaseWhenExpression) {
  ResultSet rs = Exec(
      "SELECT name, CASE WHEN age >= 30 THEN 'senior' ELSE 'junior' END AS "
      "band FROM users ORDER BY id");
  ASSERT_EQ(rs.row_count(), 3u);
  EXPECT_EQ(rs.At(0, "band"), Value::String("senior"));
  EXPECT_EQ(rs.At(1, "band"), Value::String("junior"));
  EXPECT_EQ(rs.At(2, "band"), Value::String("senior"));
}

TEST_F(ExecutorTest, CaseWithoutElseYieldsNull) {
  ResultSet rs = Exec(
      "SELECT CASE WHEN age > 100 THEN 1 END AS x FROM users WHERE id = 1");
  EXPECT_TRUE(rs.row(0)[0].is_null());
}

TEST_F(ExecutorTest, CaseMultipleBranchesFirstMatchWins) {
  ResultSet rs = Exec(
      "SELECT CASE WHEN age > 20 THEN 'a' WHEN age > 30 THEN 'b' ELSE 'c' "
      "END FROM users WHERE id = 3");
  EXPECT_EQ(rs.row(0)[0], Value::String("a"));
}

TEST_F(ExecutorTest, CaseInWhereClause) {
  ResultSet rs = Exec(
      "SELECT id FROM users WHERE CASE WHEN age > 28 THEN 1 ELSE 0 END = 1");
  EXPECT_EQ(rs.row_count(), 2u);
}

}  // namespace
}  // namespace chrono::db
