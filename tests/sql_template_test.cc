#include <gtest/gtest.h>

#include "sql/template.h"
#include "sql/writer.h"

namespace chrono::sql {
namespace {

ParsedQuery MustAnalyze(std::string_view s) {
  auto result = AnalyzeQuery(s);
  EXPECT_TRUE(result.ok()) << s << " -> " << result.status().ToString();
  return std::move(result).value();
}

TEST(Template, ConstantsBecomeParams) {
  ParsedQuery q = MustAnalyze("SELECT a FROM t WHERE b = 5 AND c = 'x'");
  EXPECT_EQ(q.tmpl->param_count, 2);
  ASSERT_EQ(q.params.size(), 2u);
  EXPECT_EQ(q.params[0], Value::Int(5));
  EXPECT_EQ(q.params[1], Value::String("x"));
  EXPECT_NE(q.tmpl->canonical_text.find('?'), std::string::npos);
}

TEST(Template, SameShapeSameTemplate) {
  ParsedQuery a = MustAnalyze("SELECT a FROM t WHERE b = 5");
  ParsedQuery b = MustAnalyze("SELECT a FROM t WHERE b = 99");
  EXPECT_EQ(a.tmpl->id, b.tmpl->id);
  EXPECT_EQ(a.tmpl->canonical_text, b.tmpl->canonical_text);
  EXPECT_NE(a.bound_text, b.bound_text);
}

TEST(Template, WhitespaceAndCaseInsensitive) {
  ParsedQuery a = MustAnalyze("SELECT a FROM t WHERE b = 5");
  ParsedQuery b = MustAnalyze("select  a\nfrom T where B = 7");
  EXPECT_EQ(a.tmpl->id, b.tmpl->id);
}

TEST(Template, DifferentShapesDiffer) {
  ParsedQuery a = MustAnalyze("SELECT a FROM t WHERE b = 5");
  ParsedQuery b = MustAnalyze("SELECT a FROM t WHERE c = 5");
  EXPECT_NE(a.tmpl->id, b.tmpl->id);
}

TEST(Template, BoundTextIsCanonical) {
  // The bound text must be identical however the client formatted the query
  // — it is the cache key (§4.1.1).
  ParsedQuery a = MustAnalyze("SELECT a FROM t WHERE b = 5");
  ParsedQuery b = MustAnalyze("SELECT  a  FROM  t  WHERE  b=5");
  EXPECT_EQ(a.bound_text, b.bound_text);
}

TEST(Template, RenderBoundTextRoundTrips) {
  ParsedQuery q = MustAnalyze("SELECT a FROM t WHERE b = 5 AND c = 'x'");
  EXPECT_EQ(RenderBoundText(*q.tmpl, q.params), q.bound_text);
}

TEST(Template, RebindsWithNewParams) {
  ParsedQuery q = MustAnalyze("SELECT a FROM t WHERE b = 5");
  std::string rebound = RenderBoundText(*q.tmpl, {Value::Int(77)});
  EXPECT_NE(rebound.find("77"), std::string::npos);
  EXPECT_EQ(rebound.find("5"), std::string::npos);
}

TEST(Template, BindParamsReplacesPlaceholders) {
  ParsedQuery q = MustAnalyze("SELECT a FROM t WHERE b = 5");
  auto bound = BindParams(*q.tmpl->ast, {Value::String("zz")});
  std::string text = WriteStatement(*bound);
  EXPECT_NE(text.find("'zz'"), std::string::npos);
  EXPECT_EQ(text.find('?'), std::string::npos);
}

TEST(Template, PartialBindLeavesPlaceholders) {
  ParsedQuery q = MustAnalyze("SELECT a FROM t WHERE b = 1 AND c = 2");
  auto bound = BindParams(*q.tmpl->ast, {Value::Int(9)});
  std::string text = WriteStatement(*bound);
  EXPECT_NE(text.find('?'), std::string::npos);
  EXPECT_NE(text.find('9'), std::string::npos);
}

TEST(Template, ReadOnlyFlag) {
  EXPECT_TRUE(MustAnalyze("SELECT a FROM t").tmpl->read_only);
  EXPECT_FALSE(MustAnalyze("UPDATE t SET a = 1").tmpl->read_only);
  EXPECT_FALSE(MustAnalyze("INSERT INTO t VALUES (1)").tmpl->read_only);
  EXPECT_FALSE(MustAnalyze("DELETE FROM t").tmpl->read_only);
}

TEST(Template, WriteTemplatesAlsoParameterised) {
  ParsedQuery q = MustAnalyze("UPDATE t SET a = 3 WHERE id = 7");
  EXPECT_EQ(q.tmpl->param_count, 2);
}

TEST(Template, StringsAndNumbersKeepType) {
  ParsedQuery q = MustAnalyze("SELECT a FROM t WHERE b = 1.5");
  EXPECT_EQ(q.params[0].type(), Value::Type::kDouble);
}

TEST(TableAccess, SelectReads) {
  ParsedQuery q = MustAnalyze("SELECT a FROM t JOIN u ON t.x = u.y");
  TableAccess access = CollectTableAccess(*q.tmpl->ast);
  EXPECT_EQ(access.reads, (std::vector<std::string>{"t", "u"}));
  EXPECT_TRUE(access.writes.empty());
}

TEST(TableAccess, CteNamesAreNotBaseTables) {
  ParsedQuery q =
      MustAnalyze("WITH q1 AS (SELECT a FROM t) SELECT * FROM q1");
  TableAccess access = CollectTableAccess(*q.tmpl->ast);
  EXPECT_EQ(access.reads, (std::vector<std::string>{"t"}));
}

TEST(TableAccess, SubqueryAndLateralReads) {
  ParsedQuery q = MustAnalyze(
      "SELECT a FROM (SELECT a FROM t) AS d, LATERAL (SELECT b FROM u WHERE "
      "u.x = d.a) AS l");
  TableAccess access = CollectTableAccess(*q.tmpl->ast);
  EXPECT_EQ(access.reads, (std::vector<std::string>{"t", "u"}));
}

TEST(TableAccess, DmlWrites) {
  EXPECT_EQ(CollectTableAccess(*MustAnalyze("UPDATE t SET a = 1").tmpl->ast)
                .writes,
            (std::vector<std::string>{"t"}));
  EXPECT_EQ(
      CollectTableAccess(*MustAnalyze("INSERT INTO t VALUES (1)").tmpl->ast)
          .writes,
      (std::vector<std::string>{"t"}));
  EXPECT_EQ(
      CollectTableAccess(*MustAnalyze("DELETE FROM t WHERE a = 1").tmpl->ast)
          .writes,
      (std::vector<std::string>{"t"}));
}

}  // namespace
}  // namespace chrono::sql
