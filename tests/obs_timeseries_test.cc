// Tests for the time-series telemetry ring (DESIGN.md §15): cumulative
// histogram merge/delta arithmetic, interval-sample derivation from a
// metrics registry, ring wraparound, and the /timeseries JSON shape.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace chrono::obs {
namespace {

HistogramSnapshot Hist(std::vector<HistogramSnapshot::Bucket> buckets,
                       double sum) {
  HistogramSnapshot h;
  h.buckets = std::move(buckets);
  h.count = h.buckets.empty() ? 0 : h.buckets.back().cumulative;
  h.sum = sum;
  return h;
}

TEST(HistogramMath, MergeSumsCumulativeCountsAcrossSparseBuckets) {
  // a observed at bounds {2, 8}; b at {4, 8}. The union must carry each
  // side's cumulative forward across bounds it never advanced.
  HistogramSnapshot a = Hist({{2, 3}, {8, 5}}, 20);
  HistogramSnapshot b = Hist({{4, 1}, {8, 4}}, 30);
  HistogramSnapshot merged = MergeHistograms(a, b);
  ASSERT_EQ(merged.buckets.size(), 3u);
  EXPECT_EQ(merged.buckets[0].upper_bound, 2);
  EXPECT_EQ(merged.buckets[0].cumulative, 3u);   // a=3, b=0 (not yet seen)
  EXPECT_EQ(merged.buckets[1].upper_bound, 4);
  EXPECT_EQ(merged.buckets[1].cumulative, 4u);   // a carries 3, b=1
  EXPECT_EQ(merged.buckets[2].upper_bound, 8);
  EXPECT_EQ(merged.buckets[2].cumulative, 9u);
  EXPECT_EQ(merged.count, 9u);
  EXPECT_DOUBLE_EQ(merged.sum, 50);
}

TEST(HistogramMath, DeltaSubtractsAndClampsRacingBuckets) {
  HistogramSnapshot prev = Hist({{2, 3}, {8, 5}}, 40);
  HistogramSnapshot cur = Hist({{2, 4}, {8, 9}}, 100);
  HistogramSnapshot delta = DeltaHistogram(cur, prev);
  ASSERT_EQ(delta.buckets.size(), 2u);
  EXPECT_EQ(delta.buckets[0].cumulative, 1u);
  EXPECT_EQ(delta.buckets[1].cumulative, 4u);
  EXPECT_EQ(delta.count, 4u);
  EXPECT_DOUBLE_EQ(delta.sum, 60);

  // A bucket that reads *behind* prev (writer raced the two snapshots)
  // clamps to zero, and monotonicity is re-imposed on what follows.
  HistogramSnapshot racing = Hist({{2, 2}, {8, 9}}, 30);
  HistogramSnapshot clamped = DeltaHistogram(racing, prev);
  EXPECT_EQ(clamped.buckets[0].cumulative, 0u);
  EXPECT_EQ(clamped.buckets[1].cumulative, 4u);
  EXPECT_DOUBLE_EQ(clamped.sum, 0);  // sum went backwards: clamp
}

/// A registry + manual clock harness: SampleNow() is driven directly so
/// tests never sleep out real intervals.
class TimeSeriesTest : public ::testing::Test {
 protected:
  TimeSeriesTest() {
    requests_ = registry_.GetCounter("chrono_requests_total", "Requests",
                                     {{"op", "read"}});
    hits_ = registry_.GetCounter("chrono_cache_hits_total", "Hits",
                                 {{"cache", "result"}});
    misses_ = registry_.GetCounter("chrono_cache_misses_total", "Misses",
                                   {{"cache", "result"}});
    latency_ = registry_.GetHistogram("chrono_request_latency_ns", "Latency",
                                      {{"op", "read"}});
  }

  TimeSeriesRing MakeRing(size_t capacity) {
    TimeSeriesRing::Options opts;
    opts.capacity = capacity;
    opts.interval_ms = 1000;
    return TimeSeriesRing(&registry_, opts, [this] { return now_us_; });
  }

  MetricsRegistry registry_;
  Counter* requests_ = nullptr;
  Counter* hits_ = nullptr;
  Counter* misses_ = nullptr;
  Histogram* latency_ = nullptr;
  uint64_t now_us_ = 0;
};

TEST_F(TimeSeriesTest, SamplesDeriveRatesFromCounterDeltas) {
  TimeSeriesRing ring = MakeRing(8);
  now_us_ = 1'000'000;
  ring.SampleNow();  // baseline: no prev, records nothing
  EXPECT_TRUE(ring.Snapshot().empty());

  requests_->Increment(200);
  hits_->Increment(30);
  misses_->Increment(10);
  for (int i = 0; i < 8; ++i) latency_->Record(1'000'000);  // 1 ms
  now_us_ = 3'000'000;  // 2 s later
  ring.SampleNow();

  std::vector<TimeSeriesRing::Sample> got = ring.Snapshot();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].t_us, 3'000'000u);
  EXPECT_DOUBLE_EQ(got[0].qps, 100);          // 200 requests / 2 s
  EXPECT_DOUBLE_EQ(got[0].hit_rate, 0.75);    // 30 / (30 + 10)
  EXPECT_EQ(got[0].requests_total, 200u);
  EXPECT_GT(got[0].p99_us, 0);

  // A second interval with no traffic: rates drop back to zero.
  now_us_ = 4'000'000;
  ring.SampleNow();
  got = ring.Snapshot();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[1].qps, 0);
  EXPECT_EQ(ring.samples_taken(), 2u);
}

TEST_F(TimeSeriesTest, RingRetainsNewestCapacitySamplesOldestFirst) {
  TimeSeriesRing ring = MakeRing(3);
  now_us_ = 1'000'000;
  ring.SampleNow();
  for (int i = 0; i < 5; ++i) {
    requests_->Increment(1);
    now_us_ += 1'000'000;
    ring.SampleNow();
  }
  std::vector<TimeSeriesRing::Sample> got = ring.Snapshot();
  ASSERT_EQ(got.size(), 3u);
  // Oldest-first, and only the newest three of the five survive.
  EXPECT_EQ(got[0].t_us, 4'000'000u);
  EXPECT_EQ(got[2].t_us, 6'000'000u);
  EXPECT_LT(got[0].t_us, got[1].t_us);
}

TEST_F(TimeSeriesTest, ToJsonIsWellFormedAndCarriesTheInterval) {
  TimeSeriesRing ring = MakeRing(4);
  now_us_ = 1'000'000;
  ring.SampleNow();
  requests_->Increment(10);
  now_us_ = 2'000'000;
  ring.SampleNow();

  std::string json = ring.ToJson();
  Status valid = ValidateJson(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << json;
  EXPECT_NE(json.find("\"interval_ms\":1000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"samples\":[{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"qps\":10.0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"requests_total\":10"), std::string::npos) << json;
}

TEST_F(TimeSeriesTest, SamplerThreadStartStopIsIdempotent) {
  TimeSeriesRing::Options opts;
  opts.capacity = 4;
  opts.interval_ms = 5;  // fast enough to take real samples in the test
  TimeSeriesRing ring(&registry_, opts, [this] { return now_us_; });
  ring.Start();
  ring.Start();  // second Start is a no-op
  // The sampler thread only records when the clock advances.
  for (int i = 0; i < 40 && ring.samples_taken() == 0; ++i) {
    requests_->Increment(1);
    now_us_ += 1'000'000;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ring.Stop();
  ring.Stop();  // idempotent
  EXPECT_GT(ring.samples_taken(), 0u);
}

}  // namespace
}  // namespace chrono::obs
