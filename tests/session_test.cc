// Session semantics (§5.2) and access control groups (§5.2.1).

#include <gtest/gtest.h>

#include "core/session.h"

namespace chrono::core {
namespace {

TEST(Session, RelationsStartAtVersionOne) {
  SessionManager s(false);
  s.RelationId("users");
  EXPECT_EQ(s.VersionOf("users"), 1u);
}

TEST(Session, WriteBumpsRelation) {
  SessionManager s(false);
  s.RelationId("users");
  s.OnClientWrite(1, {"users"});
  EXPECT_EQ(s.VersionOf("users"), 2u);
}

TEST(Session, SnapshotCoversRequestedRelations) {
  SessionManager s(false);
  auto snap = s.SnapshotFor({"a", "b"});
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].second, 1u);
  s.OnClientWrite(1, {"a"});
  snap = s.SnapshotFor({"a", "b"});
  EXPECT_EQ(snap[0].second, 2u);
  EXPECT_EQ(snap[1].second, 1u);
}

TEST(Session, FreshClientCanUseAnything) {
  SessionManager s(false);
  auto snap = s.SnapshotFor({"a"});
  EXPECT_TRUE(s.CanUse(7, snap));
}

TEST(Session, StaleResultRejectedAfterClientAdvances) {
  SessionManager s(false);
  auto old_snap = s.SnapshotFor({"a"});
  // Another client writes; our client then reads fresh from the database.
  s.OnClientWrite(2, {"a"});
  s.SyncClientToDb(1);
  EXPECT_FALSE(s.CanUse(1, old_snap));
  EXPECT_TRUE(s.CanUse(1, s.SnapshotFor({"a"})));
}

TEST(Session, WriterSeesOwnWrites) {
  SessionManager s(false);
  auto old_snap = s.SnapshotFor({"a"});
  s.OnClientWrite(1, {"a"});
  // The writer's session advanced past the old cached result.
  EXPECT_FALSE(s.CanUse(1, old_snap));
  // A client that never read nor wrote still accepts the older snapshot
  // (it corresponds to a consistent earlier state).
  EXPECT_TRUE(s.CanUse(2, old_snap));
}

TEST(Session, AbsorbAdvancesOnlyTouchedRelations) {
  SessionManager s(false);
  s.RelationId("a");
  s.RelationId("b");
  s.OnClientWrite(9, {"a"});
  s.OnClientWrite(9, {"b"});
  auto snap_a = s.SnapshotFor({"a"});
  s.AbsorbResult(1, snap_a);
  // Client 1 absorbed a's version but not b's: older b results still fine.
  cache::VersionVector old_b = {{s.RelationId("b"), 1}};
  EXPECT_FALSE(s.CanUse(1, cache::VersionVector{{s.RelationId("a"), 1}}));
  EXPECT_TRUE(s.CanUse(1, cache::VersionVector{
                              {s.RelationId("b"), s.VersionOf("b")}}));
}

TEST(Session, NewerResultAlwaysUsable) {
  SessionManager s(false);
  s.SyncClientToDb(1);
  s.OnClientWrite(2, {"a"});
  // A result tagged after the write is >= client 1's session.
  EXPECT_TRUE(s.CanUse(1, s.SnapshotFor({"a"})));
}

TEST(Session, MultiNodeAdvancesEverythingOnRemoteAccess) {
  SessionManager s(/*multi_node=*/true);
  s.RelationId("a");
  s.RelationId("b");
  auto old_snap = s.SnapshotFor({"a", "b"});
  s.OnRemoteAccess();
  EXPECT_EQ(s.VersionOf("a"), 2u);
  EXPECT_EQ(s.VersionOf("b"), 2u);
  s.SyncClientToDb(1);
  EXPECT_FALSE(s.CanUse(1, old_snap));
}

TEST(Session, SingleNodeRemoteAccessIsNoop) {
  SessionManager s(false);
  s.RelationId("a");
  s.OnRemoteAccess();
  EXPECT_EQ(s.VersionOf("a"), 1u);
}

TEST(Session, LazyRelationRegistrationGrowsVectors) {
  SessionManager s(false);
  s.SyncClientToDb(1);
  // New relation appears after the client's vector was created.
  s.RelationId("late");
  EXPECT_TRUE(s.CanUse(1, s.SnapshotFor({"late"})));
  s.AbsorbResult(1, s.SnapshotFor({"late"}));
  EXPECT_EQ(s.VersionOf("late"), 1u);
}

TEST(Session, UnknownRelationVersionZero) {
  SessionManager s(false);
  EXPECT_EQ(s.VersionOf("never"), 0u);
}

}  // namespace
}  // namespace chrono::core
