// RemoteDbServer: WAN latency accounting, worker-pool queueing, row-based
// service costs — the contention model behind the scalability results.

#include <gtest/gtest.h>

#include "core/middleware.h"
#include "db/database.h"

namespace chrono::core {
namespace {

class RemoteDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteText("CREATE TABLE t (id bigint, v bigint)").ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db_.ExecuteText("INSERT INTO t VALUES (" +
                                  std::to_string(i) + ", " +
                                  std::to_string(i * 10) + ")")
                      .ok());
    }
  }

  EventQueue events_;
  db::Database db_;
  net::LatencyModel latency_;
};

TEST_F(RemoteDbTest, RoundTripIncludesWanAndService) {
  RemoteDbServer remote(&events_, &db_, latency_, 4);
  SimTime done_at = -1;
  remote.Submit("SELECT v FROM t WHERE id = 7",
                [&](SimTime now, Result<db::ExecOutcome> outcome) {
                  ASSERT_TRUE(outcome.ok());
                  EXPECT_EQ(outcome->result.row(0)[0], sql::Value::Int(70));
                  done_at = now;
                });
  events_.RunAll();
  EXPECT_GE(done_at, latency_.wan_rtt + latency_.db_base_service);
  EXPECT_LT(done_at, latency_.wan_rtt + 10 * kMicrosPerMilli);
}

TEST_F(RemoteDbTest, SingleWorkerSerialisesService) {
  RemoteDbServer remote(&events_, &db_, latency_, 1);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    remote.Submit("SELECT v FROM t WHERE id = 1",
                  [&](SimTime now, Result<db::ExecOutcome> outcome) {
                    ASSERT_TRUE(outcome.ok());
                    completions.push_back(now);
                  });
  }
  events_.RunAll();
  ASSERT_EQ(completions.size(), 3u);
  // Same arrival time, one worker: completions are spaced by service time.
  EXPECT_GT(completions[1], completions[0]);
  EXPECT_GT(completions[2], completions[1]);
  EXPECT_NEAR(static_cast<double>(completions[1] - completions[0]),
              static_cast<double>(completions[2] - completions[1]), 1.0);
}

TEST_F(RemoteDbTest, ParallelWorkersOverlap) {
  RemoteDbServer remote(&events_, &db_, latency_, 4);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    remote.Submit("SELECT v FROM t WHERE id = 1",
                  [&](SimTime now, Result<db::ExecOutcome>) {
                    completions.push_back(now);
                  });
  }
  events_.RunAll();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], completions[1]);
  EXPECT_EQ(completions[1], completions[2]);
}

TEST_F(RemoteDbTest, ServiceTimeScalesWithRowsTouched) {
  RemoteDbServer remote(&events_, &db_, latency_, 1);
  SimTime point_done = 0;
  SimTime scan_done = 0;
  remote.Submit("SELECT v FROM t WHERE id = 3",
                [&](SimTime now, Result<db::ExecOutcome>) { point_done = now; });
  events_.RunAll();
  SimTime start = events_.now();
  remote.Submit("SELECT count(*) FROM t WHERE v > 0",  // full scan
                [&](SimTime now, Result<db::ExecOutcome>) { scan_done = now; });
  events_.RunAll();
  EXPECT_GT(scan_done - start, point_done);  // scan costs more than lookup
}

TEST_F(RemoteDbTest, ErrorsPropagateWithLatency) {
  RemoteDbServer remote(&events_, &db_, latency_, 2);
  SimTime done_at = -1;
  bool failed = false;
  remote.Submit("SELECT broken FROM missing_table",
                [&](SimTime now, Result<db::ExecOutcome> outcome) {
                  failed = !outcome.ok();
                  done_at = now;
                });
  events_.RunAll();
  EXPECT_TRUE(failed);
  EXPECT_GE(done_at, latency_.wan_rtt);
}

TEST_F(RemoteDbTest, CountsRequestsAndRows) {
  RemoteDbServer remote(&events_, &db_, latency_, 2);
  remote.Submit("SELECT v FROM t WHERE id = 1",
                [](SimTime, Result<db::ExecOutcome>) {});
  remote.Submit("SELECT v FROM t WHERE id = 2",
                [](SimTime, Result<db::ExecOutcome>) {});
  events_.RunAll();
  EXPECT_EQ(remote.requests(), 2u);
  EXPECT_GT(remote.rows_scanned(), 0u);
  EXPECT_GT(remote.busy_time(), 0);
}

TEST_F(RemoteDbTest, WritesApplyInSubmissionOrder) {
  RemoteDbServer remote(&events_, &db_, latency_, 1);
  remote.Submit("UPDATE t SET v = 1 WHERE id = 0",
                [](SimTime, Result<db::ExecOutcome>) {});
  remote.Submit("UPDATE t SET v = v + 1 WHERE id = 0",
                [](SimTime, Result<db::ExecOutcome>) {});
  sql::Value final_v;
  remote.Submit("SELECT v FROM t WHERE id = 0",
                [&](SimTime, Result<db::ExecOutcome> outcome) {
                  ASSERT_TRUE(outcome.ok());
                  final_v = outcome->result.row(0)[0];
                });
  events_.RunAll();
  EXPECT_EQ(final_v, sql::Value::Int(2));
}

}  // namespace
}  // namespace chrono::core
