#include <gtest/gtest.h>

#include "core/dependency_graph.h"

namespace chrono::core {
namespace {

DependencyGraph Chain12() {
  // Q1 -> Q2 with one binding; Q1 has 1 own param, Q2's single param mapped.
  DependencyGraph g;
  g.nodes = {1, 2};
  g.param_counts[1] = 1;
  g.param_counts[2] = 1;
  g.edges.push_back({1, 2, {{"symb", 0}}});
  g.Normalize();
  return g;
}

TEST(DependencyGraph, Roles) {
  DependencyGraph g = Chain12();
  EXPECT_EQ(g.RoleOf(1), NodeRole::kDependency);
  EXPECT_EQ(g.RoleOf(2), NodeRole::kPredicted);
}

TEST(DependencyGraph, LoopConstantRole) {
  DependencyGraph g = Chain12();
  g.nodes.push_back(3);
  g.param_counts[3] = 2;  // one mapped, one per-loop constant
  g.edges.push_back({1, 3, {{"symb", 0}}});
  g.loop_marked.insert(3);
  g.Normalize();
  EXPECT_EQ(g.RoleOf(3), NodeRole::kLoopConstant);
  EXPECT_EQ(g.TextDependencies(), (std::vector<TemplateId>{1, 3}));
  EXPECT_EQ(g.DependencyQueries(), (std::vector<TemplateId>{1}));
}

TEST(DependencyGraph, PartiallyCoveredUnmarkedNodeIsDependency) {
  DependencyGraph g = Chain12();
  g.param_counts[2] = 2;  // second param uncovered, not marked
  EXPECT_EQ(g.RoleOf(2), NodeRole::kDependency);
}

TEST(DependencyGraph, ParamlessRootIsDependency) {
  DependencyGraph g;
  g.nodes = {5};
  g.param_counts[5] = 0;
  g.Normalize();
  EXPECT_EQ(g.RoleOf(5), NodeRole::kDependency);
}

TEST(DependencyGraph, TopologicalOrder) {
  DependencyGraph g;
  g.nodes = {1, 2, 3};
  g.param_counts = {{1, 1}, {2, 1}, {3, 1}};
  g.edges.push_back({2, 3, {{"c", 0}}});
  g.edges.push_back({1, 2, {{"b", 0}}});
  g.Normalize();
  EXPECT_EQ(g.TopologicalOrder(), (std::vector<TemplateId>{1, 2, 3}));
}

TEST(DependencyGraph, CycleHasNoTopologicalOrder) {
  DependencyGraph g;
  g.nodes = {1, 2};
  g.param_counts = {{1, 1}, {2, 1}};
  g.edges.push_back({1, 2, {{"a", 0}}});
  g.edges.push_back({2, 1, {{"b", 0}}});
  g.Normalize();
  EXPECT_TRUE(g.TopologicalOrder().empty());
}

TEST(DependencyGraph, SubsumesSuperset) {
  // Fig. 6: graph A = {Q1->Q2, Q1->Q3} subsumes C = {Q1->Q2}.
  DependencyGraph a = Chain12();
  a.nodes.push_back(3);
  a.param_counts[3] = 1;
  a.edges.push_back({1, 3, {{"x", 0}}});
  a.Normalize();
  DependencyGraph c = Chain12();
  EXPECT_TRUE(a.Subsumes(c));
  EXPECT_FALSE(c.Subsumes(a));
  EXPECT_TRUE(a.Subsumes(a));
}

TEST(DependencyGraph, BindingContainmentRequired) {
  DependencyGraph a = Chain12();
  DependencyGraph b = Chain12();
  b.edges[0].bindings = {{"other_col", 0}};
  EXPECT_FALSE(a.Subsumes(b));
  EXPECT_FALSE(b.Subsumes(a));
}

TEST(DependencyGraph, LoopConstantGraphsIncomparable) {
  // Fig. 6: B (loop-constant) is not a superset of A nor vice versa, even
  // when node/edge sets nest (§3).
  DependencyGraph a = Chain12();
  a.nodes.push_back(3);
  a.param_counts[3] = 1;
  a.edges.push_back({1, 3, {{"x", 0}}});
  a.Normalize();
  DependencyGraph b = Chain12();
  b.loop_marked.insert(2);
  EXPECT_FALSE(a.Subsumes(b));
  EXPECT_FALSE(b.Subsumes(a));
}

TEST(DependencyGraph, CanonicalKeyStable) {
  DependencyGraph a = Chain12();
  DependencyGraph b = Chain12();
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
  b.loop_marked.insert(2);
  EXPECT_NE(a.CanonicalKey(), b.CanonicalKey());
}

TEST(DependencyGraph, NormalizeDeduplicates) {
  DependencyGraph g;
  g.nodes = {2, 1, 2, 1};
  g.param_counts = {{1, 1}, {2, 1}};
  g.edges.push_back({1, 2, {{"a", 0}, {"a", 0}}});
  g.Normalize();
  EXPECT_EQ(g.nodes, (std::vector<TemplateId>{1, 2}));
  EXPECT_EQ(g.edges[0].bindings.size(), 1u);
}

TEST(DependencyGraph, CoveredParams) {
  DependencyGraph g;
  g.nodes = {1, 2, 3};
  g.param_counts = {{1, 0}, {2, 0}, {3, 3}};
  g.edges.push_back({1, 3, {{"a", 0}, {"b", 2}}});
  g.edges.push_back({2, 3, {{"c", 1}}});
  g.Normalize();
  EXPECT_EQ(g.CoveredParams(3), (std::set<int>{0, 1, 2}));
  EXPECT_EQ(g.RoleOf(3), NodeRole::kPredicted);
}


TEST(DependencyGraph, ToDotRendersRolesAndBindings) {
  DependencyGraph g = Chain12();
  g.loop_marked.insert(2);
  std::string dot = g.ToDot({{1, "watch list"}, {2, "security lookup"}});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("watch list"), std::string::npos);
  EXPECT_NE(dot.find("security lookup"), std::string::npos);
  EXPECT_NE(dot.find("(dependency)"), std::string::npos);
  EXPECT_NE(dot.find("(loop constant)"), std::string::npos);
  EXPECT_NE(dot.find("symb->$0"), std::string::npos);
}

TEST(DependencyGraph, ToDotDefaultLabels) {
  DependencyGraph g = Chain12();
  std::string dot = g.ToDot();
  EXPECT_NE(dot.find("Q1"), std::string::npos);
  EXPECT_NE(dot.find("(predicted)"), std::string::npos);
}

}  // namespace
}  // namespace chrono::core
