// Single-flight backend coalescing (DESIGN.md §12): concurrent misses on
// the same cache key collapse onto one backend call, every waiter gets the
// leader's immutable payload by pointer, and a leader failure fans the
// same Status out to the parked followers without retry amplification.
// CI runs this suite under ThreadSanitizer.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "obs/journal.h"
#include "runtime/server.h"
#include "sql/result_set.h"

namespace chrono::runtime {

/// Befriended by ChronoServer: lets a test advance a client's session
/// vector at a deterministic point inside a coalescing race (a real write
/// shares the WAN latency with the in-flight read, so its commit cannot be
/// scheduled between the leader's snapshot and the follower's park through
/// the public API alone).
struct SingleFlightTestPeer {
  static void BumpClientWrite(ChronoServer& server, ClientId client,
                              const std::vector<std::string>& tables) {
    std::lock_guard<obs::TimedMutex> lock(server.versions_mutex_);
    server.versions_.OnClientWrite(client, tables);
  }
};

namespace {

/// Collects every journaled event in memory for post-run assertions.
class CollectSink : public obs::JournalSink {
 public:
  void OnEvents(const obs::JournalEvent* events, size_t count) override {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.insert(events_.end(), events, events + count);
  }

  std::vector<obs::JournalEvent> Take() {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

 private:
  std::mutex mutex_;
  std::vector<obs::JournalEvent> events_;
};

class SingleFlightTest : public ::testing::Test {
 protected:
  SingleFlightTest() {
    auto setup = [&](const std::string& sql) {
      auto r = db_.ExecuteText(sql);
      EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    };
    setup("CREATE TABLE t (id INT, v TEXT)");
    for (int i = 0; i < 8; ++i) {
      setup("INSERT INTO t (id, v) VALUES (" + std::to_string(i) + ", 'v" +
            std::to_string(i) + "')");
    }
  }

  /// A WAN slow enough (50 ms round trip) that every concurrently
  /// submitted miss reaches the in-flight table while the leader's fetch
  /// is still on the wire, and enough workers that no submission queues
  /// behind another.
  ServerConfig SlowBackendConfig() {
    ServerConfig config;
    config.workers = 8;
    config.enable_learning = false;
    config.enable_combining = false;
    config.db_latency_us = 50'000;
    config.journal_drain_ms = 0;  // manual Drain(): deterministic reads
    return config;
  }

  db::Database db_;
};

TEST_F(SingleFlightTest, ConcurrentMissesCoalesceOntoOneBackendCall) {
  ChronoServer server(&db_, SlowBackendConfig());
  CollectSink sink;
  ASSERT_NE(server.journal(), nullptr);
  server.journal()->AddSink(&sink);

  constexpr int kRequests = 8;
  const std::string kSql = "SELECT v FROM t WHERE id = 3";
  std::vector<std::future<Result<SharedResult>>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(server.Submit(1, kSql));
  }

  std::set<const sql::ResultSet*> payloads;
  for (auto& f : futures) {
    Result<SharedResult> result = f.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ((*result)->row_count(), 1u);
    EXPECT_EQ((*result)->rows()[0][0].AsString(), "v3");
    payloads.insert(result->get());
  }
  // Zero-copy contract: leader and followers all hold the same payload.
  EXPECT_EQ(payloads.size(), 1u);

  ServerMetrics m = server.metrics();
  EXPECT_EQ(m.reads, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(m.remote_plain, 1u);  // exactly one backend call
  EXPECT_EQ(m.backend_coalesced, static_cast<uint64_t>(kRequests - 1));
  EXPECT_EQ(m.cache_hits, 0u);
  EXPECT_EQ(m.errors, 0u);

  // Journal attribution: one kBackendCoalesced event per follower, each
  // flagged ok and carrying a distinct park ordinal 0..N-2.
  server.journal()->Drain();
  std::set<uint64_t> ordinals;
  int coalesced_events = 0;
  for (const obs::JournalEvent& e : sink.Take()) {
    if (static_cast<obs::JournalEventType>(e.type) !=
        obs::JournalEventType::kBackendCoalesced) {
      continue;
    }
    ++coalesced_events;
    EXPECT_NE(e.flags & obs::kJournalFlagOk, 0u);
    ordinals.insert(e.a);
  }
  EXPECT_EQ(coalesced_events, kRequests - 1);
  ASSERT_EQ(ordinals.size(), static_cast<size_t>(kRequests - 1));
  EXPECT_EQ(*ordinals.begin(), 0u);
  EXPECT_EQ(*ordinals.rbegin(), static_cast<uint64_t>(kRequests - 2));
}

TEST_F(SingleFlightTest, LeaderFailureFansOutWithoutRetryAmplification) {
  ServerConfig config = SlowBackendConfig();
  config.fault.error_pct = 100;  // every backend attempt fails
  config.retry.max_attempts = 3;
  config.retry.initial_backoff_us = 200;
  config.retry.max_backoff_us = 2'000;
  config.request_deadline_us = 2'000'000;  // roomy: all 3 attempts fit
  config.attempt_timeout_us = 100'000;
  ChronoServer server(&db_, config);

  constexpr int kRequests = 6;
  std::vector<std::future<Result<SharedResult>>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(server.Submit(1, "SELECT v FROM t WHERE id = 5"));
  }

  std::set<std::string> statuses;
  for (auto& f : futures) {
    Result<SharedResult> result = f.get();
    EXPECT_FALSE(result.ok());
    statuses.insert(result.status().ToString());
  }
  // The leader's terminal Status fans out verbatim to every follower.
  EXPECT_EQ(statuses.size(), 1u);

  ServerMetrics m = server.metrics();
  EXPECT_EQ(m.remote_plain, 1u);
  EXPECT_EQ(m.backend_coalesced, static_cast<uint64_t>(kRequests - 1));
  // One retry budget total: the followers never touch the backend, so a
  // thundering herd cannot multiply attempts against a failing database.
  EXPECT_EQ(m.backend_retries, 2u);
  EXPECT_EQ(m.errors, static_cast<uint64_t>(kRequests));
}

TEST_F(SingleFlightTest, PerClientKeysDoNotCoalesceAcrossClients) {
  ServerConfig config = SlowBackendConfig();
  config.share_across_clients = false;  // per-client cache keys
  ChronoServer server(&db_, config);

  auto f1 = server.Submit(1, "SELECT v FROM t WHERE id = 2");
  auto f2 = server.Submit(2, "SELECT v FROM t WHERE id = 2");
  ASSERT_TRUE(f1.get().ok());
  ASSERT_TRUE(f2.get().ok());

  // Isolated caches mean isolated fetches: coalescing across clients here
  // would leak one client's result visibility to another.
  ServerMetrics m = server.metrics();
  EXPECT_EQ(m.remote_plain, 2u);
  EXPECT_EQ(m.backend_coalesced, 0u);
}

TEST_F(SingleFlightTest, CrossSecurityGroupMissesDoNotCoalesce) {
  // share_across_clients (the default) shares cache keys, but coalescing
  // must still honour security groups: a follower in another group must
  // not inherit the leader's rows when CacheGet would have rejected the
  // same share (§5.2.1).
  ChronoServer server(&db_, SlowBackendConfig());

  auto f1 = server.Submit(1, "SELECT v FROM t WHERE id = 4",
                          /*security_group=*/0);
  auto f2 = server.Submit(2, "SELECT v FROM t WHERE id = 4",
                          /*security_group=*/7);
  ASSERT_TRUE(f1.get().ok());
  ASSERT_TRUE(f2.get().ok());

  ServerMetrics m = server.metrics();
  EXPECT_EQ(m.remote_plain, 2u);
  EXPECT_EQ(m.backend_coalesced, 0u);
  EXPECT_EQ(m.errors, 0u);
}

TEST_F(SingleFlightTest, FollowerWithNewerSessionRefetchesInsteadOfInheriting) {
  ServerConfig config = SlowBackendConfig();
  config.db_latency_us = 200'000;
  config.journal_drain_ms = 0;
  ChronoServer server(&db_, config);
  CollectSink sink;
  ASSERT_NE(server.journal(), nullptr);
  server.journal()->AddSink(&sink);

  const std::string kSql = "SELECT v FROM t WHERE id = 6";
  auto leader = server.Submit(1, kSql);
  // The leader increments remote_plain after taking its pre-read version
  // snapshot and publishing the flight, so once the counter reads 1 the
  // snapshot is in the past and a write bump lands strictly after it.
  while (server.metrics().remote_plain == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  SingleFlightTestPeer::BumpClientWrite(server, /*client=*/2, {"t"});

  // Client 2 now parks on client 1's flight (200 ms still on the wire),
  // but the flight's snapshot predates its write: read-your-writes (§5.2)
  // forbids inheriting the leader's possibly pre-write rows, so it must
  // reject the payload and lead a fresh fetch of its own.
  auto follower = server.Submit(2, kSql);
  ASSERT_TRUE(leader.get().ok());
  Result<SharedResult> refetched = follower.get();
  ASSERT_TRUE(refetched.ok()) << refetched.status().ToString();
  ASSERT_EQ((*refetched)->row_count(), 1u);
  EXPECT_EQ((*refetched)->rows()[0][0].AsString(), "v6");

  ServerMetrics m = server.metrics();
  EXPECT_EQ(m.remote_plain, 2u);  // the rejected wait saved nothing
  EXPECT_EQ(m.backend_coalesced, 0u);
  EXPECT_EQ(m.errors, 0u);

  // The park is journaled, flagged ok but marked session-rejected (b = 1).
  server.journal()->Drain();
  int rejected_parks = 0;
  for (const obs::JournalEvent& e : sink.Take()) {
    if (static_cast<obs::JournalEventType>(e.type) !=
        obs::JournalEventType::kBackendCoalesced) {
      continue;
    }
    EXPECT_NE(e.flags & obs::kJournalFlagOk, 0u);
    EXPECT_EQ(e.b, 1u);
    ++rejected_parks;
  }
  EXPECT_EQ(rejected_parks, 1);
}

TEST_F(SingleFlightTest, LateArrivalAfterCompletionHitsTheCache) {
  ServerConfig config = SlowBackendConfig();
  config.db_latency_us = 0;  // instant backend: the flight retires at once
  ChronoServer server(&db_, config);

  ASSERT_TRUE(server.Submit(1, "SELECT v FROM t WHERE id = 1").get().ok());
  ASSERT_TRUE(server.Submit(1, "SELECT v FROM t WHERE id = 1").get().ok());

  // The second request finds the installed entry, not a stale flight.
  ServerMetrics m = server.metrics();
  EXPECT_EQ(m.remote_plain, 1u);
  EXPECT_EQ(m.cache_hits, 1u);
  EXPECT_EQ(m.backend_coalesced, 0u);
}

}  // namespace
}  // namespace chrono::runtime
