// Unit + concurrency tests for the observability metrics layer: the
// log-bucketed lock-striped histogram (bucket math, percentile
// interpolation, concurrent record/snapshot), and the MetricsRegistry
// (get-or-create identity, callback metrics, owner-scoped unregistration).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace chrono::obs {
namespace {

// ---- Bucket math --------------------------------------------------------

TEST(HistogramBuckets, SmallValuesAreExact) {
  for (uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<int>(v));
    EXPECT_EQ(Histogram::BucketUpperBound(static_cast<int>(v)), v);
  }
}

TEST(HistogramBuckets, IndexAndBoundAreConsistent) {
  // Every bucket's upper bound maps back into that bucket, and the next
  // value spills into the following bucket.
  for (int i = 0; i < Histogram::kBucketCount - 1; ++i) {
    uint64_t ub = Histogram::BucketUpperBound(i);
    EXPECT_EQ(Histogram::BucketIndex(ub), i) << "upper bound of bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(ub + 1), i + 1)
        << "value just past bucket " << i;
  }
}

TEST(HistogramBuckets, MonotoneOverWideRange) {
  int prev = -1;
  for (uint64_t v = 0; v < 1'000'000; v = v < 64 ? v + 1 : v + v / 7) {
    int idx = Histogram::BucketIndex(v);
    EXPECT_GE(idx, prev);
    EXPECT_LE(v, Histogram::BucketUpperBound(idx));
    prev = idx;
  }
}

TEST(HistogramBuckets, RelativeErrorBounded) {
  // Above the exact range, each octave splits into 8 linear sub-buckets,
  // so bucket width / lower edge <= 1/8 + rounding.
  for (uint64_t v = 16; v < (1ull << 40); v += v / 3) {
    int idx = Histogram::BucketIndex(v);
    uint64_t ub = Histogram::BucketUpperBound(idx);
    uint64_t lb = idx == 0 ? 0 : Histogram::BucketUpperBound(idx - 1) + 1;
    ASSERT_GE(v, lb);
    ASSERT_LE(v, ub);
    double width = static_cast<double>(ub - lb + 1);
    EXPECT_LE(width / static_cast<double>(lb), 0.13)
        << "v=" << v << " bucket [" << lb << "," << ub << "]";
  }
}

// ---- Record / Snapshot --------------------------------------------------

TEST(Histogram, CountsAndSumAreExact) {
  Histogram h;
  h.Record(1);
  h.Record(3);
  h.Record(17);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 21.0);
  ASSERT_FALSE(s.buckets.empty());
  // Cumulative buckets end with +Inf carrying the total count.
  EXPECT_TRUE(std::isinf(s.buckets.back().upper_bound));
  EXPECT_EQ(s.buckets.back().cumulative, 3u);
}

TEST(Histogram, EmptySnapshotIsValid) {
  Histogram h;
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  ASSERT_EQ(s.buckets.size(), 1u);  // just the +Inf terminal
  EXPECT_EQ(s.buckets.back().cumulative, 0u);
  EXPECT_EQ(s.Percentile(0.5), 0.0);
}

TEST(Histogram, PercentilesInterpolateWithinBucketError) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1000u);
  // True p50 = 500, p99 = 990; the bucket scheme bounds relative error by
  // 12.5%, interpolation keeps it well inside that.
  EXPECT_NEAR(s.Percentile(0.50), 500.0, 500.0 * 0.13);
  EXPECT_NEAR(s.Percentile(0.99), 990.0, 990.0 * 0.13);
  EXPECT_NEAR(s.Mean(), 500.5, 0.01);
}

TEST(Histogram, SparseHistogramAnchorsAtTrueLowerEdge) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Record(4);  // bucket 4 is unit-width
  HistogramSnapshot s = h.Snapshot();
  // The snapshot anchors the bucket's true lower edge (le="3", cum 0), so
  // interpolation stays inside (3, 4] instead of smearing down to 0.
  double p50 = s.Percentile(0.5);
  EXPECT_GT(p50, 3.0);
  EXPECT_LE(p50, 4.0);
  ASSERT_GE(s.buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(s.buckets[0].upper_bound, 3.0);
  EXPECT_EQ(s.buckets[0].cumulative, 0u);
}

// The TSan target of this file: many writers recording while readers
// snapshot concurrently must be race-free, and no update may be lost once
// the writers are joined.
TEST(Histogram, ConcurrentRecordAndSnapshotStorm) {
  Histogram h(/*stripes=*/4);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 50'000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        HistogramSnapshot s = h.Snapshot();
        // Mid-storm snapshots must be internally consistent.
        ASSERT_TRUE(std::isinf(s.buckets.back().upper_bound));
        ASSERT_EQ(s.buckets.back().cumulative, s.count);
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&h, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        h.Record(static_cast<uint64_t>((w * kPerWriter + i) % 100'000));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(h.Snapshot().count,
            static_cast<uint64_t>(kWriters) * kPerWriter);
}

// ---- MetricsRegistry ----------------------------------------------------

TEST(MetricsRegistry, GetOrCreateReturnsStableIdentity) {
  MetricsRegistry r;
  Counter* a = r.GetCounter("x_total", "help", {{"k", "1"}});
  Counter* b = r.GetCounter("x_total", "ignored on re-get", {{"k", "1"}});
  Counter* c = r.GetCounter("x_total", "help", {{"k", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Increment(2);
  b->Increment();
  EXPECT_EQ(a->value(), 3u);
  EXPECT_EQ(r.metric_count(), 2u);
}

TEST(MetricsRegistry, LabelOrderDoesNotSplitMetrics) {
  MetricsRegistry r;
  Counter* a = r.GetCounter("y_total", "h", {{"a", "1"}, {"b", "2"}});
  Counter* b = r.GetCounter("y_total", "h", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistry, SnapshotIsSortedAndFindable) {
  MetricsRegistry r;
  r.GetGauge("b_gauge", "g")->Set(2.5);
  r.GetCounter("a_total", "c", {{"op", "w"}})->Increment(4);
  r.GetCounter("a_total", "c", {{"op", "r"}})->Increment(7);
  RegistrySnapshot s = r.Snapshot();
  ASSERT_EQ(s.metrics.size(), 3u);
  EXPECT_EQ(s.metrics[0].name, "a_total");
  EXPECT_EQ(s.metrics[0].labels, (Labels{{"op", "r"}}));
  EXPECT_EQ(s.metrics[1].labels, (Labels{{"op", "w"}}));
  EXPECT_EQ(s.metrics[2].name, "b_gauge");

  const MetricSnapshot* found = s.Find("a_total", {{"op", "w"}});
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->value, 4.0);
  EXPECT_EQ(s.Find("missing"), nullptr);
}

TEST(MetricsRegistry, CallbackMetricsPullAtSnapshot) {
  MetricsRegistry r;
  uint64_t source = 5;
  r.RegisterCallbackCounter("pulled_total", "h", {},
                            [&source] { return static_cast<double>(source); },
                            &source);
  EXPECT_DOUBLE_EQ(r.Snapshot().Find("pulled_total")->value, 5.0);
  source = 9;
  EXPECT_DOUBLE_EQ(r.Snapshot().Find("pulled_total")->value, 9.0);

  // After the owner unregisters, the callback must never run again (the
  // metric stays, frozen at the stored value — zero for pure callbacks).
  r.UnregisterCallbacksOwnedBy(&source);
  source = 1234;
  EXPECT_DOUBLE_EQ(r.Snapshot().Find("pulled_total")->value, 0.0);
}

TEST(MetricsRegistry, ConcurrentGetAndIncrement) {
  MetricsRegistry r;
  constexpr int kThreads = 4;
  constexpr int kIters = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r] {
      for (int i = 0; i < kIters; ++i) {
        r.GetCounter("storm_total", "h", {{"lane", std::to_string(i % 3)}})
            ->Increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  RegistrySnapshot s = r.Snapshot();
  double total = 0;
  for (const MetricSnapshot& m : s.metrics) total += m.value;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(kThreads) * kIters);
  EXPECT_EQ(r.metric_count(), 3u);
}

}  // namespace
}  // namespace chrono::obs
