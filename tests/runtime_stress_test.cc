// Multi-threaded stress tests for the concurrent serving runtime. These
// are the tests CI runs under ThreadSanitizer: many threads hammering the
// sharded cache on overlapping keys, and a full server serving a
// read/write mix from concurrent clients.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "db/database.h"
#include "runtime/server.h"
#include "runtime/sharded_cache.h"
#include "runtime/thread_pool.h"
#include "sql/result_set.h"
#include "sql/value.h"

namespace chrono::runtime {
namespace {

using sql::ResultSet;
using sql::Value;

cache::CachedResult MakeEntry(int64_t tag) {
  cache::CachedResult entry;
  ResultSet rs({"tag"});
  rs.AddRow({Value::Int(tag)});
  entry.SetResult(std::move(rs));
  entry.version = {{0, 1}};
  return entry;
}

TEST(RuntimeStress, ShardedCacheOverlappingKeys) {
  constexpr int kThreads = 8;
  constexpr int kKeys = 32;  // far fewer keys than operations: heavy overlap
  constexpr int kOpsPerThread = 4000;
  ShardedCache cache(1 << 20, 8);

  std::vector<std::thread> threads;
  std::atomic<uint64_t> observed_rows{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string key = "k" + std::to_string(rng.NextBounded(kKeys));
        switch (rng.NextBounded(4)) {
          case 0:
            cache.Put(key, MakeEntry(t));
            break;
          case 1: {
            auto hit = cache.Get(key);
            // The copy must stay intact even while other threads evict or
            // replace the entry.
            if (hit.has_value()) {
              observed_rows.fetch_add(hit->result->row_count(),
                                      std::memory_order_relaxed);
            }
            break;
          }
          case 2:
            cache.Invalidate(key);
            break;
          default: {
            auto peek = cache.Peek(key);
            if (peek.has_value()) {
              ASSERT_EQ(peek->result->row_count(), 1u);
            }
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Internal consistency after the storm: aggregate accounting matches the
  // per-shard view, and the budget was never blown.
  size_t entry_sum = 0, byte_sum = 0;
  for (size_t s = 0; s < cache.shard_count(); ++s) {
    entry_sum += cache.ShardEntryCount(s);
    byte_sum += cache.ShardUsedBytes(s);
  }
  EXPECT_EQ(cache.entry_count(), entry_sum);
  EXPECT_EQ(cache.used_bytes(), byte_sum);
  EXPECT_LE(cache.used_bytes(), cache.capacity_bytes());
}

TEST(RuntimeStress, SharedPayloadImmutableAfterPublication) {
  // Zero-copy hits hand every reader a pointer to the same immutable
  // payload. Replacing or invalidating the key must never mutate rows a
  // reader already holds: readers snapshot the tag when they acquire the
  // payload and re-check it while a writer churns the same key.
  constexpr int kReaders = 6;
  constexpr int kWriterIters = 2000;
  ShardedCache cache(1 << 20, 4);
  cache.Put("hot", MakeEntry(0));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mutations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto hit = cache.Get("hot");
        if (!hit.has_value()) continue;
        std::shared_ptr<const ResultSet> payload = hit->result;
        int64_t tag = payload->row(0)[0].AsInt();
        for (int i = 0; i < 16; ++i) {
          if (payload->row_count() != 1 ||
              payload->row(0)[0].AsInt() != tag) {
            mutations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (int64_t i = 1; i <= kWriterIters; ++i) {
    cache.Put("hot", MakeEntry(i));
    if (i % 64 == 0) cache.Invalidate("hot");
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(mutations.load(), 0u);
}

TEST(RuntimeStress, ThreadPoolConcurrentSubmitAndShutdown) {
  ThreadPool pool(4, /*queue_capacity=*/64);
  std::atomic<uint64_t> ran{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        if (!pool.Submit([&ran] {
              ran.fetch_add(1, std::memory_order_relaxed);
            })) {
          break;  // pool shut down underneath us — allowed
        }
      }
    });
  }
  // Shut down while producers are still submitting: accepted tasks must
  // all run, late submitters must get a clean `false`.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  pool.Shutdown();
  for (auto& t : producers) t.join();
  EXPECT_EQ(ran.load(), pool.tasks_executed());
}

TEST(RuntimeStress, ServerConcurrentMixedWorkload) {
  db::Database db;
  {
    auto must = [&](const std::string& sql) {
      auto r = db.ExecuteText(sql);
      ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    };
    must("CREATE TABLE kv (id INT, n INT)");
    for (int i = 0; i < 64; ++i) {
      must("INSERT INTO kv (id, n) VALUES (" + std::to_string(i) + ", 0)");
    }
  }

  ServerConfig config;
  config.workers = 4;
  config.cache_shards = 8;
  ChronoServer server(&db, config);

  constexpr int kClients = 8;
  constexpr int kOpsPerClient = 300;
  std::atomic<uint64_t> ok_ops{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<uint64_t>(c) + 99);
      for (int i = 0; i < kOpsPerClient; ++i) {
        int64_t id = static_cast<int64_t>(rng.NextBounded(16));  // overlap
        std::string sql;
        if (rng.NextBounded(10) == 0) {
          sql = "UPDATE kv SET n = n + 1 WHERE id = " + std::to_string(id);
        } else {
          sql = "SELECT n FROM kv WHERE id = " + std::to_string(id);
        }
        auto result = server.Submit(c, sql).get();
        if (result.ok()) ok_ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(ok_ops.load(), static_cast<uint64_t>(kClients * kOpsPerClient));
  auto m = server.metrics();
  EXPECT_EQ(m.reads + m.writes, ok_ops.load());
  EXPECT_GT(m.cache_hits, 0u);
  server.Shutdown();

  // Session semantics must have kept every client's reads coherent with
  // its own writes; the final ground truth is the database itself.
  auto sum = db.ExecuteText("SELECT SUM(n) AS total FROM kv");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->result.At(0, "total").AsInt(),
            static_cast<int64_t>(server.metrics().writes));
}

TEST(RuntimeStress, ServerManyClientsSharedHotKeys) {
  db::Database db;
  {
    auto must = [&](const std::string& sql) {
      auto r = db.ExecuteText(sql);
      ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    };
    must("CREATE TABLE hot (id INT, v TEXT)");
    for (int i = 0; i < 4; ++i) {
      must("INSERT INTO hot (id, v) VALUES (" + std::to_string(i) + ", 'x')");
    }
  }
  ServerConfig config;
  config.workers = 4;
  ChronoServer server(&db, config);

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::atomic<uint64_t> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 200; ++i) {
        std::string sql = "SELECT v FROM hot WHERE id = " +
                          std::to_string(i % 4);  // everyone, same 4 keys
        auto result = server.Submit(c, sql).get();
        if (!result.ok() || (*result)->row_count() != 1) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0u);
  // Four distinct queries total: everything after the first four fetches
  // must be served from the shared cache.
  auto m = server.metrics();
  EXPECT_GE(m.cache_hits, m.reads - 8);
}

}  // namespace
}  // namespace chrono::runtime
