#include <gtest/gtest.h>

#include "db/catalog.h"
#include "db/table.h"

namespace chrono::db {
namespace {

using sql::Value;

Table MakeTable() {
  return Table("t", {ColumnDef{"id", Value::Type::kInt},
                     ColumnDef{"name", Value::Type::kString}});
}

TEST(Table, InsertAssignsMonotonicRowids) {
  Table t = MakeTable();
  auto r1 = t.Insert({Value::Int(1), Value::String("a")});
  auto r2 = t.Insert({Value::Int(2), Value::String("b")});
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_LT(*r1, *r2);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, InsertArityMismatchFails) {
  Table t = MakeTable();
  EXPECT_FALSE(t.Insert({Value::Int(1)}).ok());
}

TEST(Table, ColumnIndex) {
  Table t = MakeTable();
  EXPECT_EQ(t.ColumnIndex("id"), 0);
  EXPECT_EQ(t.ColumnIndex("name"), 1);
  EXPECT_EQ(t.ColumnIndex("nope"), -1);
}

TEST(Table, ProbeBuildsIndexOnFirstUse) {
  Table t = MakeTable();
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(t.Insert({Value::Int(i % 3), Value::String("x")}).ok());
  }
  EXPECT_FALSE(t.HasIndex(0));
  const auto& slots = t.Probe(0, Value::Int(1));
  EXPECT_TRUE(t.HasIndex(0));
  EXPECT_EQ(slots.size(), 4u);
  for (size_t s : slots) {
    EXPECT_EQ(t.slots()[s].values[0], Value::Int(1));
  }
}

TEST(Table, ProbeMissReturnsEmpty) {
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("a")}).ok());
  EXPECT_TRUE(t.Probe(0, Value::Int(99)).empty());
}

TEST(Table, IndexMaintainedAcrossInsert) {
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("a")}).ok());
  (void)t.Probe(0, Value::Int(1));  // build index
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("b")}).ok());
  EXPECT_EQ(t.Probe(0, Value::Int(1)).size(), 2u);
}

TEST(Table, IndexMaintainedAcrossUpdate) {
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("a")}).ok());
  (void)t.Probe(0, Value::Int(1));
  t.UpdateSlot(0, {{0, Value::Int(9)}});
  EXPECT_TRUE(t.Probe(0, Value::Int(1)).empty());
  EXPECT_EQ(t.Probe(0, Value::Int(9)).size(), 1u);
}

TEST(Table, IndexMaintainedAcrossDelete) {
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("a")}).ok());
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("b")}).ok());
  (void)t.Probe(0, Value::Int(1));
  t.DeleteSlot(0);
  EXPECT_EQ(t.Probe(0, Value::Int(1)).size(), 1u);
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_FALSE(t.slots()[0].live);
}

TEST(Table, NumericKeyNormalisation) {
  // 2 and 2.0 must land in the same index bucket (SQL equality).
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Int(2), Value::String("a")}).ok());
  EXPECT_EQ(t.Probe(0, Value::Double(2.0)).size(), 1u);
}

TEST(Table, StringIndexKeysDistinctFromNumbers) {
  Table t("s", {ColumnDef{"k", Value::Type::kString}});
  ASSERT_TRUE(t.Insert({Value::String("2")}).ok());
  EXPECT_EQ(t.Probe(0, Value::String("2")).size(), 1u);
  EXPECT_TRUE(t.Probe(0, Value::Int(2)).empty());
}

TEST(Table, VersionBumpsOnMutations) {
  Table t = MakeTable();
  uint64_t v0 = t.version();
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("a")}).ok());
  uint64_t v1 = t.version();
  EXPECT_GT(v1, v0);
  t.UpdateSlot(0, {{1, Value::String("b")}});
  EXPECT_GT(t.version(), v1);
}

TEST(Catalog, CreateAndFind) {
  Catalog c;
  auto t = c.CreateTable("a", {ColumnDef{"x", Value::Type::kInt}});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(c.FindTable("a"), *t);
  EXPECT_EQ(c.FindTable("b"), nullptr);
  EXPECT_EQ(c.table_count(), 1u);
}

TEST(Catalog, DuplicateNameRejected) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable("a", {}).ok());
  EXPECT_FALSE(c.CreateTable("a", {}).ok());
}

TEST(Catalog, RelationIdsAreDense) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable("a", {}).ok());
  ASSERT_TRUE(c.CreateTable("b", {}).ok());
  EXPECT_EQ(c.RelationId("a"), 0);
  EXPECT_EQ(c.RelationId("b"), 1);
  EXPECT_EQ(c.RelationId("zzz"), -1);
}

}  // namespace
}  // namespace chrono::db
