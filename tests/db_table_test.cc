#include <gtest/gtest.h>

#include "db/catalog.h"
#include "db/table.h"

namespace chrono::db {
namespace {

using sql::Value;

Table MakeTable() {
  return Table("t", {ColumnDef{"id", Value::Type::kInt},
                     ColumnDef{"name", Value::Type::kString}});
}

TEST(Table, InsertAssignsMonotonicRowids) {
  Table t = MakeTable();
  auto r1 = t.Insert({Value::Int(1), Value::String("a")});
  auto r2 = t.Insert({Value::Int(2), Value::String("b")});
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_LT(*r1, *r2);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, InsertArityMismatchFails) {
  Table t = MakeTable();
  EXPECT_FALSE(t.Insert({Value::Int(1)}).ok());
}

TEST(Table, ColumnIndex) {
  Table t = MakeTable();
  EXPECT_EQ(t.ColumnIndex("id"), 0);
  EXPECT_EQ(t.ColumnIndex("name"), 1);
  EXPECT_EQ(t.ColumnIndex("nope"), -1);
}

TEST(Table, ProbeBuildsIndexOnFirstUse) {
  Table t = MakeTable();
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(t.Insert({Value::Int(i % 3), Value::String("x")}).ok());
  }
  EXPECT_FALSE(t.HasIndex(0));
  const auto& slots = t.Probe(0, Value::Int(1));
  EXPECT_TRUE(t.HasIndex(0));
  EXPECT_EQ(slots.size(), 4u);
  for (size_t s : slots) {
    EXPECT_EQ(t.slots()[s].values[0], Value::Int(1));
  }
}

TEST(Table, ProbeMissReturnsEmpty) {
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("a")}).ok());
  EXPECT_TRUE(t.Probe(0, Value::Int(99)).empty());
}

TEST(Table, IndexMaintainedAcrossInsert) {
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("a")}).ok());
  (void)t.Probe(0, Value::Int(1));  // build index
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("b")}).ok());
  EXPECT_EQ(t.Probe(0, Value::Int(1)).size(), 2u);
}

TEST(Table, IndexMaintainedAcrossUpdate) {
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("a")}).ok());
  (void)t.Probe(0, Value::Int(1));
  t.UpdateSlot(0, {{0, Value::Int(9)}});
  EXPECT_TRUE(t.Probe(0, Value::Int(1)).empty());
  EXPECT_EQ(t.Probe(0, Value::Int(9)).size(), 1u);
}

TEST(Table, IndexMaintainedAcrossDelete) {
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("a")}).ok());
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("b")}).ok());
  (void)t.Probe(0, Value::Int(1));
  t.DeleteSlot(0);
  EXPECT_EQ(t.Probe(0, Value::Int(1)).size(), 1u);
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_FALSE(t.slots()[0].live);
}

TEST(Table, NumericKeyNormalisation) {
  // 2 and 2.0 must land in the same index bucket (SQL equality).
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Int(2), Value::String("a")}).ok());
  EXPECT_EQ(t.Probe(0, Value::Double(2.0)).size(), 1u);
}

TEST(Table, StringIndexKeysDistinctFromNumbers) {
  Table t("s", {ColumnDef{"k", Value::Type::kString}});
  ASSERT_TRUE(t.Insert({Value::String("2")}).ok());
  EXPECT_EQ(t.Probe(0, Value::String("2")).size(), 1u);
  EXPECT_TRUE(t.Probe(0, Value::Int(2)).empty());
}

TEST(Table, NearEqualDoubleKeysStayDistinct) {
  // Regression: the old string-materialised index key used
  // std::to_string(double), which renders with six fixed decimals — both
  // 1e-7 and 2e-7 became "0.000000" and collided into one bucket. The
  // value-keyed index must keep them apart.
  Table t("d", {ColumnDef{"k", Value::Type::kDouble}});
  ASSERT_TRUE(t.Insert({Value::Double(1e-7)}).ok());
  ASSERT_TRUE(t.Insert({Value::Double(2e-7)}).ok());
  EXPECT_EQ(t.Probe(0, Value::Double(1e-7)).size(), 1u);
  EXPECT_EQ(t.Probe(0, Value::Double(2e-7)).size(), 1u);
  EXPECT_TRUE(t.Probe(0, Value::Double(3e-7)).empty());
}

TEST(Table, NegativeZeroKeyMatchesZero) {
  // -0.0 == 0.0 == 0 under SQL equality; ValueHash must agree so the
  // probe finds the row regardless of which zero built the bucket.
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Int(0), Value::String("a")}).ok());
  EXPECT_EQ(t.Probe(0, Value::Double(-0.0)).size(), 1u);
  EXPECT_EQ(t.Probe(0, Value::Double(0.0)).size(), 1u);
}

TEST(Table, IndexKeyBucketingAgreesWithEqualsSql) {
  // The index is a prefilter for the executor's WHERE re-evaluation, so
  // bucketing must never be finer than Value::EqualsSql: any pair of
  // values that EqualsSql deems equal must probe into the same bucket.
  const Value probes[] = {Value::Int(7), Value::Double(7.0)};
  for (const Value& stored : probes) {
    Table t = MakeTable();
    ASSERT_TRUE(t.Insert({stored, Value::String("x")}).ok());
    for (const Value& probe : probes) {
      ASSERT_TRUE(stored.EqualsSql(probe));
      EXPECT_EQ(t.Probe(0, probe).size(), 1u)
          << stored.ToSqlLiteral() << " probed by " << probe.ToSqlLiteral();
    }
  }
}

TEST(Table, IndexSurvivesUpdateDeleteReinsertSequence) {
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("a")}).ok());
  ASSERT_TRUE(t.Insert({Value::Int(2), Value::String("b")}).ok());
  (void)t.Probe(0, Value::Int(1));  // build index

  // Move row 0's key 1 -> 2, delete the original key-2 row, then insert a
  // fresh key-1 row; the index must track every step.
  t.UpdateSlot(0, {{0, Value::Int(2)}});
  EXPECT_TRUE(t.Probe(0, Value::Int(1)).empty());
  EXPECT_EQ(t.Probe(0, Value::Int(2)).size(), 2u);

  t.DeleteSlot(1);
  EXPECT_EQ(t.Probe(0, Value::Int(2)).size(), 1u);

  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("c")}).ok());
  EXPECT_EQ(t.Probe(0, Value::Int(1)).size(), 1u);
  EXPECT_EQ(t.Probe(0, Value::Int(2)).size(), 1u);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, NullKeysIndexDistinctFromZero) {
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Null(), Value::String("n")}).ok());
  ASSERT_TRUE(t.Insert({Value::Int(0), Value::String("z")}).ok());
  // NULL never EqualsSql anything (including NULL), so probing by 0 must
  // not surface the NULL row.
  const auto& zeros = t.Probe(0, Value::Int(0));
  ASSERT_EQ(zeros.size(), 1u);
  EXPECT_EQ(t.slots()[zeros[0]].values[1], Value::String("z"));
}

TEST(Table, VersionBumpsOnMutations) {
  Table t = MakeTable();
  uint64_t v0 = t.version();
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("a")}).ok());
  uint64_t v1 = t.version();
  EXPECT_GT(v1, v0);
  t.UpdateSlot(0, {{1, Value::String("b")}});
  EXPECT_GT(t.version(), v1);
}

TEST(Catalog, CreateAndFind) {
  Catalog c;
  auto t = c.CreateTable("a", {ColumnDef{"x", Value::Type::kInt}});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(c.FindTable("a"), *t);
  EXPECT_EQ(c.FindTable("b"), nullptr);
  EXPECT_EQ(c.table_count(), 1u);
}

TEST(Catalog, DuplicateNameRejected) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable("a", {}).ok());
  EXPECT_FALSE(c.CreateTable("a", {}).ok());
}

TEST(Catalog, RelationIdsAreDense) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable("a", {}).ok());
  ASSERT_TRUE(c.CreateTable("b", {}).ok());
  EXPECT_EQ(c.RelationId("a"), 0);
  EXPECT_EQ(c.RelationId("b"), 1);
  EXPECT_EQ(c.RelationId("zzz"), -1);
}

}  // namespace
}  // namespace chrono::db
