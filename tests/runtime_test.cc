// Unit tests for the concurrent serving runtime: thread pool lifecycle
// and exception safety, sharded-cache byte accounting, and ChronoServer
// correctness against direct database execution.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "runtime/server.h"
#include "runtime/sharded_cache.h"
#include "runtime/thread_pool.h"
#include "sql/result_set.h"
#include "sql/value.h"

namespace chrono::runtime {
namespace {

using sql::ResultSet;
using sql::Value;

// ---- ThreadPool ---------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&count] { ++count; }));
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.tasks_executed(), 100u);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  // One worker, many tasks: Shutdown must let everything already queued
  // finish (graceful drain, not abandonment).
  ThreadPool pool(1, /*queue_capacity=*/256);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.Submit([&count] {
      std::this_thread::sleep_for(std::chrono::microseconds(10));
      ++count;
    }));
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
  EXPECT_FALSE(pool.TrySubmit([] {}));
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  ASSERT_TRUE(pool.Submit([] {}));
  pool.Shutdown();
  pool.Shutdown();  // second call must be a harmless no-op
  EXPECT_EQ(pool.tasks_executed(), 1u);
}

TEST(ThreadPool, TaskExceptionsDoNotKillWorkers) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pool.Submit([] { throw std::runtime_error("boom"); }));
    ASSERT_TRUE(pool.Submit([&count] { ++count; }));
  }
  pool.Shutdown();
  // Every well-behaved task still ran; every throwing task was counted.
  EXPECT_EQ(count.load(), 10);
  EXPECT_EQ(pool.tasks_failed(), 10u);
  EXPECT_EQ(pool.tasks_executed(), 20u);
}

TEST(ThreadPool, TrySubmitRejectsWhenFull) {
  // No workers can make progress while the first task blocks, so a
  // capacity-1 queue must reject a second TrySubmit.
  ThreadPool pool(1, /*queue_capacity=*/1);
  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.Submit([&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }));
  // Give the worker a moment to dequeue the blocker, then fill the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(pool.TrySubmit([] {}));
  bool third = pool.TrySubmit([] {});
  EXPECT_FALSE(third);
  release.store(true);
  pool.Shutdown();
}

TEST(ThreadPool, TracksQueueDepth) {
  ThreadPool pool(1, /*queue_capacity=*/64);
  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.Submit([&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(pool.Submit([] {}));
  EXPECT_GE(pool.queue_depth(), 5u);
  EXPECT_GE(pool.peak_queue_depth(), 5u);
  release.store(true);
  pool.Shutdown();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

// ---- ShardedCache -------------------------------------------------------

cache::CachedResult MakeEntry(int rows = 1) {
  cache::CachedResult entry;
  ResultSet rs({"a"});
  for (int i = 0; i < rows; ++i) rs.AddRow({Value::Int(i)});
  entry.SetResult(std::move(rs));
  entry.version = {{0, 1}};
  return entry;
}

TEST(ShardedCache, PutGetRoundTrip) {
  ShardedCache cache(1 << 20, 8);
  cache.Put("k", MakeEntry(3));
  auto hit = cache.Get("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result->row_count(), 3u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_FALSE(cache.Get("missing").has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ShardedCache, CapacitySplitsExactlyAcrossShards) {
  ShardedCache cache(1000, 3);  // 1000 = 334 + 333 + 333
  EXPECT_EQ(cache.shard_count(), 3u);
  EXPECT_EQ(cache.capacity_bytes(), 1000u);
}

TEST(ShardedCache, ByteAccountingAcrossShards) {
  ShardedCache cache(4 << 20, 8);
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) keys.push_back("key" + std::to_string(i));
  for (const auto& k : keys) cache.Put(k, MakeEntry(4));

  // Total bytes/entries must equal the sum over shards.
  size_t entry_sum = 0, byte_sum = 0;
  for (size_t s = 0; s < cache.shard_count(); ++s) {
    entry_sum += cache.ShardEntryCount(s);
    byte_sum += cache.ShardUsedBytes(s);
  }
  EXPECT_EQ(cache.entry_count(), 64u);
  EXPECT_EQ(entry_sum, 64u);
  EXPECT_EQ(cache.used_bytes(), byte_sum);
  EXPECT_GT(byte_sum, 0u);

  // Erasing releases the owning shard's bytes.
  size_t before = cache.used_bytes();
  ASSERT_TRUE(cache.Invalidate(keys[0]));
  EXPECT_LT(cache.used_bytes(), before);
  EXPECT_EQ(cache.entry_count(), 63u);
  EXPECT_FALSE(cache.Invalidate(keys[0]));
}

TEST(ShardedCache, EvictionIsShardLocal) {
  // A tiny budget forces evictions within whichever shard receives the
  // keys; the global invariant is used_bytes <= capacity_bytes per shard,
  // hence also in aggregate.
  ShardedCache cache(8 * 1024, 4);
  for (int i = 0; i < 512; ++i) {
    cache.Put("key" + std::to_string(i), MakeEntry(8));
  }
  EXPECT_LE(cache.used_bytes(), cache.capacity_bytes());
  EXPECT_GT(cache.evictions(), 0u);
  for (size_t s = 0; s < cache.shard_count(); ++s) {
    EXPECT_LE(cache.ShardUsedBytes(s), (8 * 1024) / 4 + 1);
  }
}

TEST(ShardedCache, SameKeyAlwaysSameShard) {
  ShardedCache cache(1 << 20, 16);
  for (int i = 0; i < 32; ++i) {
    std::string key = "stable" + std::to_string(i);
    size_t first = cache.ShardIndex(key);
    for (int j = 0; j < 3; ++j) EXPECT_EQ(cache.ShardIndex(key), first);
  }
}

TEST(ShardedCache, PeekDoesNotPerturb) {
  ShardedCache cache(1 << 20, 4);
  cache.Put("k", MakeEntry());
  uint64_t hits_before = cache.hits();
  EXPECT_TRUE(cache.Peek("k").has_value());
  EXPECT_FALSE(cache.Peek("missing").has_value());
  EXPECT_EQ(cache.hits(), hits_before);
}

// ---- ChronoServer -------------------------------------------------------

class ChronoServerTest : public ::testing::Test {
 protected:
  ChronoServerTest() {
    auto setup = [&](const std::string& sql) {
      auto r = db_.ExecuteText(sql);
      EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    };
    setup("CREATE TABLE t (id INT, v TEXT)");
    for (int i = 0; i < 50; ++i) {
      setup("INSERT INTO t (id, v) VALUES (" + std::to_string(i) + ", 'v" +
            std::to_string(i) + "')");
    }
  }

  db::Database db_;
};

TEST_F(ChronoServerTest, ServesReadsAndMatchesDirectExecution) {
  ServerConfig config;
  config.workers = 2;
  ChronoServer server(&db_, config);
  for (int i = 0; i < 10; ++i) {
    std::string sql = "SELECT v FROM t WHERE id = " + std::to_string(i);
    auto via_server = server.Submit(1, sql).get();
    auto direct = db_.ExecuteText(sql);
    ASSERT_TRUE(via_server.ok()) << via_server.status().ToString();
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(**via_server, direct->result) << sql;
  }
  EXPECT_EQ(server.metrics().reads, 10u);
}

TEST_F(ChronoServerTest, RepeatedReadsHitTheCache) {
  ServerConfig config;
  config.workers = 2;
  ChronoServer server(&db_, config);
  std::string sql = "SELECT v FROM t WHERE id = 7";
  ASSERT_TRUE(server.Submit(1, sql).get().ok());
  ASSERT_TRUE(server.Submit(1, sql).get().ok());
  ASSERT_TRUE(server.Submit(2, sql).get().ok());  // shared across clients
  auto m = server.metrics();
  EXPECT_EQ(m.reads, 3u);
  EXPECT_EQ(m.cache_hits, 2u);
  EXPECT_EQ(m.remote_plain, 1u);
}

TEST_F(ChronoServerTest, WritesInvalidateViaSessionVersions) {
  ServerConfig config;
  config.workers = 2;
  ChronoServer server(&db_, config);
  std::string read = "SELECT v FROM t WHERE id = 3";
  ASSERT_TRUE(server.Submit(1, read).get().ok());

  auto updated =
      server.Submit(1, "UPDATE t SET v = 'changed' WHERE id = 3").get();
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();

  // The writer observed its own write (Vc absorbed the bump), so the stale
  // cached entry is rejected and re-fetched fresh.
  auto after = server.Submit(1, read).get();
  ASSERT_TRUE(after.ok());
  ASSERT_EQ((*after)->row_count(), 1u);
  EXPECT_EQ((*after)->At(0, "v").AsString(), "changed");
  EXPECT_GE(server.metrics().cache_rejects, 1u);
}

TEST_F(ChronoServerTest, SecurityGroupsDoNotShareResults) {
  ServerConfig config;
  config.workers = 2;
  ChronoServer server(&db_, config);
  std::string sql = "SELECT v FROM t WHERE id = 5";
  ASSERT_TRUE(server.Submit(1, sql, /*security_group=*/0).get().ok());
  ASSERT_TRUE(server.Submit(2, sql, /*security_group=*/1).get().ok());
  auto m = server.metrics();
  EXPECT_EQ(m.cache_hits, 0u);
  EXPECT_GE(m.cache_rejects, 1u);
}

TEST_F(ChronoServerTest, ParseErrorsSurfaceAsStatuses) {
  ServerConfig config;
  config.workers = 2;
  ChronoServer server(&db_, config);
  auto result = server.Submit(1, "SELECT FROM WHERE").get();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(server.metrics().errors, 1u);
}

TEST_F(ChronoServerTest, SubmitAfterShutdownReturnsError) {
  ServerConfig config;
  config.workers = 2;
  ChronoServer server(&db_, config);
  server.Shutdown();
  auto result = server.Submit(1, "SELECT v FROM t WHERE id = 1").get();
  EXPECT_FALSE(result.ok());
}

TEST_F(ChronoServerTest, LearnsAndPrefetchesDependentQueries) {
  ServerConfig config;
  config.workers = 2;
  config.extract_every = 2;
  ChronoServer server(&db_, config);
  // Train a dependency: the id read from `t` drives a follow-up lookup.
  // Same pattern the simulator learns from (SELECT a -> SELECT using a's
  // result value).
  for (int round = 0; round < 12; ++round) {
    int id = round % 4;
    auto first =
        server
            .Submit(1, "SELECT id FROM t WHERE id = " + std::to_string(id))
            .get();
    ASSERT_TRUE(first.ok());
    auto second =
        server.Submit(1, "SELECT v FROM t WHERE id = " + std::to_string(id))
            .get();
    ASSERT_TRUE(second.ok());
  }
  auto m = server.metrics();
  // The learned model produced at least one combined prefetch.
  EXPECT_GT(m.remote_combined + m.predictions_cached, 0u)
      << "combined=" << m.remote_combined
      << " predicted=" << m.predictions_cached;
}

}  // namespace
}  // namespace chrono::runtime
