// Continuous-profiling tests (DESIGN.md §16): stack-trie fold
// determinism, the collapsed-stack export format, lazy symbolization and
// its fallbacks, sample-ring drop accounting, thread-registry naming, the
// sampler's start/stop/restart signal hygiene, and an end-to-end
// /profile + /threads scrape over a real loopback socket.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/stats_server.h"
#include "obs/threads.h"

namespace chrono::obs {
namespace {

// ---- StackTrie ----------------------------------------------------------

/// Resolver for synthetic token paths: labels by their interned string,
/// raw tokens as "fN".
std::function<std::string(uint64_t)> Resolver(const StackTrie& trie) {
  return [&trie](uint64_t token) -> std::string {
    if (token & (1ull << 63)) return trie.LabelFor(token);
    return "f" + std::to_string(token);
  };
}

TEST(StackTrie, FoldIsDeterministicAcrossInsertionOrders) {
  // The same multiset of samples, inserted in two different orders, must
  // render byte-identical collapsed output.
  StackTrie a;
  StackTrie b;
  uint64_t wa = a.InternLabel("worker");
  uint64_t ia = a.InternLabel("io");
  uint64_t wb = b.InternLabel("worker");
  uint64_t ib = b.InternLabel("io");

  std::vector<std::vector<uint64_t>> paths_a = {
      {wa, 10, 20, 30}, {wa, 10, 20}, {ia, 40}, {wa, 10, 20, 30}, {ia, 40, 50},
  };
  std::vector<std::vector<uint64_t>> paths_b = {
      {ib, 40, 50}, {wb, 10, 20, 30}, {ib, 40}, {wb, 10, 20}, {wb, 10, 20, 30},
  };
  for (const auto& p : paths_a) a.Add(p.data(), p.size());
  for (const auto& p : paths_b) b.Add(p.data(), p.size());

  EXPECT_EQ(a.sample_count(), 5u);
  EXPECT_EQ(a.sample_count(), b.sample_count());
  EXPECT_EQ(a.Collapsed(Resolver(a)), b.Collapsed(Resolver(b)));
}

TEST(StackTrie, CollapsedFormatIsFlamegraphReady) {
  StackTrie trie;
  uint64_t worker = trie.InternLabel("worker");
  uint64_t path[] = {worker, 7, 9};
  trie.Add(path, 3, /*count=*/4);
  uint64_t shallow[] = {worker, 7};
  trie.Add(shallow, 2, /*count=*/1);

  // One line per leaf, "frames... count", semicolon-joined, sorted.
  EXPECT_EQ(trie.Collapsed(Resolver(trie)), "worker;f7 1\nworker;f7;f9 4\n");
}

TEST(StackTrie, ClearResetsEverything) {
  StackTrie trie;
  uint64_t t = trie.InternLabel("x");
  uint64_t path[] = {t, 1};
  trie.Add(path, 2);
  EXPECT_GT(trie.node_count(), 1u);
  trie.Clear();
  EXPECT_EQ(trie.sample_count(), 0u);
  EXPECT_EQ(trie.Collapsed(Resolver(trie)), "");
}

TEST(StackTrie, ForEachPathVisitsSelfCountsOnly) {
  StackTrie trie;
  uint64_t t = trie.InternLabel("r");
  uint64_t deep[] = {t, 1, 2};
  trie.Add(deep, 3, 5);
  size_t visited = 0;
  uint64_t total = 0;
  trie.ForEachPath([&](const std::vector<uint64_t>& path, uint64_t count) {
    ++visited;
    total += count;
    EXPECT_EQ(path.size(), 3u);  // only the leaf has self count
  });
  EXPECT_EQ(visited, 1u);
  EXPECT_EQ(total, 5u);
}

// ---- Symbolization ------------------------------------------------------

TEST(Symbolize, FallsBackToHexForUnmappedAddresses) {
  // Address 0x1 maps to no image: the last-resort rendering is bare hex.
  std::string sym = SymbolizePc(0x1);
  EXPECT_EQ(sym.rfind("0x", 0), 0u) << sym;
}

TEST(Symbolize, ResolvesExportedFunctionsByName) {
  // CMAKE_ENABLE_EXPORTS puts ThreadRoleName in the dynamic symbol table,
  // so dladdr + demangle must find it by name.
  uint64_t pc = reinterpret_cast<uint64_t>(
      reinterpret_cast<void*>(&ThreadRoleName));
  std::string sym = SymbolizePc(pc);
  EXPECT_NE(sym.find("ThreadRoleName"), std::string::npos) << sym;
}

// ---- SampleRing ---------------------------------------------------------

TEST(SampleRing, PushDrainRoundTrip) {
  SampleRing ring(8);
  CpuSample sample;
  sample.depth = 2;
  sample.pcs[0] = 0xaa;
  sample.pcs[1] = 0xbb;
  ASSERT_TRUE(ring.TryPush(sample));
  std::vector<CpuSample> out;
  EXPECT_EQ(ring.DrainInto(&out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].depth, 2);
  EXPECT_EQ(out[0].pcs[0], 0xaau);
  EXPECT_EQ(out[0].pcs[1], 0xbbu);
}

TEST(SampleRing, FullRingCountsDropsInsteadOfBlocking) {
  SampleRing ring(4);
  CpuSample sample;
  sample.depth = 0;
  for (size_t i = 0; i < ring.capacity(); ++i) {
    ASSERT_TRUE(ring.TryPush(sample));
  }
  EXPECT_FALSE(ring.TryPush(sample));
  EXPECT_FALSE(ring.TryPush(sample));
  EXPECT_EQ(ring.dropped(), 2u);
  std::vector<CpuSample> out;
  EXPECT_EQ(ring.DrainInto(&out), ring.capacity());
  // Space again after the drain.
  EXPECT_TRUE(ring.TryPush(sample));
}

// ---- ThreadRegistry -----------------------------------------------------

TEST(ThreadRegistry, NamesThreadAndTruncatesKernelName) {
  const std::string long_name = "chrono-very-long-thread-name";
  std::string kernel_name;
  std::string registry_name;
  std::thread t([&] {
    ThreadLease lease(ThreadRole::kWorker, long_name);
    char buf[32] = {0};
    pthread_getname_np(pthread_self(), buf, sizeof(buf));
    kernel_name = buf;
    registry_name = lease.entry()->name;
    EXPECT_EQ(ThreadRegistry::Current(), lease.entry());
  });
  t.join();
  // Kernel names cap at 15 chars + NUL; the registry keeps the full name.
  EXPECT_EQ(kernel_name, long_name.substr(0, 15));
  EXPECT_EQ(registry_name, long_name);
}

TEST(ThreadRegistry, ThreadsJsonListsRegisteredThreads) {
  {
    ThreadLease lease(ThreadRole::kSampler, "chrono-json-probe");
    std::string json = ThreadRegistry::Instance().ThreadsJson();
    ASSERT_TRUE(ValidateJson(json).ok()) << json;
    EXPECT_NE(json.find("\"chrono-json-probe\""), std::string::npos);
    EXPECT_NE(json.find("\"sampler\""), std::string::npos);
  }
  // After the lease: still listed, no longer alive. Probe entries are
  // find-by-name since other tests contribute entries too.
  std::string json = ThreadRegistry::Instance().ThreadsJson();
  size_t at = json.find("\"chrono-json-probe\"");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(json.find("\"alive\":false", at), std::string::npos);
}

// ---- CpuProfiler --------------------------------------------------------

/// Burns CPU on a registered thread until the profiler has captured at
/// least `want` samples or `deadline_s` elapsed. Returns samples seen.
uint64_t BurnUntilCaptured(CpuProfiler* profiler, uint64_t want,
                           double deadline_s = 10.0) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(deadline_s);
  volatile uint64_t sink = 0;
  while (profiler->samples_captured() < want &&
         std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 50000; ++i) sink += static_cast<uint64_t>(i) * 31;
  }
  return profiler->samples_captured();
}

TEST(CpuProfiler, CapturesSamplesFromABusyThread) {
  ThreadLease lease(ThreadRole::kWorker, "chrono-burn");
  CpuProfiler profiler;
  ASSERT_TRUE(profiler.Start(997).ok());  // fast: keeps the test short
  uint64_t captured = BurnUntilCaptured(&profiler, 5);
  profiler.Stop();
  EXPECT_GE(captured, 5u);
  EXPECT_GT(profiler.samples_folded(), 0u);
  // The busy thread is registered, so its samples attribute to its role.
  std::string collapsed = profiler.CollapsedStacks();
  EXPECT_NE(collapsed.find("worker;chrono-burn"), std::string::npos)
      << collapsed;
}

TEST(CpuProfiler, StopQuiescesAndRestartWorks) {
  ThreadLease lease(ThreadRole::kWorker, "chrono-burn2");
  CpuProfiler profiler;
  ASSERT_TRUE(profiler.Start(997).ok());
  ASSERT_GE(BurnUntilCaptured(&profiler, 3), 3u);
  profiler.Stop();
  EXPECT_FALSE(profiler.running());

  // No signal leaks: with the timer disarmed, burning CPU adds nothing.
  uint64_t after_stop = profiler.samples_captured();
  volatile uint64_t sink = 0;
  auto until = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(200);
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 0; i < 50000; ++i) sink += static_cast<uint64_t>(i);
  }
  EXPECT_EQ(profiler.samples_captured(), after_stop);

  // Restart resets the window and captures again.
  ASSERT_TRUE(profiler.Start(997).ok());
  EXPECT_GE(BurnUntilCaptured(&profiler, 3), 3u);
  profiler.Stop();
}

TEST(CpuProfiler, SecondStartFails) {
  CpuProfiler profiler;
  ASSERT_TRUE(profiler.Start(99).ok());
  EXPECT_FALSE(profiler.Start(99).ok());   // same instance
  CpuProfiler other;
  EXPECT_FALSE(other.Start(99).ok());      // process-wide exclusivity
  profiler.Stop();
  EXPECT_TRUE(other.Start(99).ok());       // armable once the first stops
  other.Stop();
}

TEST(CpuProfiler, RejectsOutOfRangeRates) {
  CpuProfiler profiler;
  EXPECT_FALSE(profiler.Start(-5).ok());
  EXPECT_FALSE(profiler.Start(1001).ok());
  ASSERT_TRUE(profiler.Start(0).ok());  // 0 means Options::hz
  EXPECT_EQ(profiler.hz(), 99);
  profiler.Stop();
}

TEST(CpuProfiler, ProfileJsonIsWellFormed) {
  ThreadLease lease(ThreadRole::kWorker, "chrono-burn3");
  CpuProfiler profiler;
  ASSERT_TRUE(profiler.Start(997).ok());
  BurnUntilCaptured(&profiler, 3);
  profiler.Stop();
  std::string json = profiler.ProfileJson();
  ASSERT_TRUE(ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"samples\""), std::string::npos);
  EXPECT_NE(json.find("\"stacks\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\""), std::string::npos);
}

// ---- StatsServer e2e ----------------------------------------------------

/// Minimal HTTP/1.0 GET against 127.0.0.1:port; returns the full response
/// (headers + body) or "" on connect failure.
std::string HttpGet(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(StatsServerProfile, ServesThreadsAndProfileOverLoopback) {
  MetricsRegistry registry;
  CpuProfiler profiler;
  StatsServer server(&registry, nullptr);
  server.SetProfiler(&profiler);
  // /profile blocks the accept loop for the window; keep the scrape
  // socket timeout comfortably above seconds=1.
  server.set_io_timeout_ms(10000);
  ASSERT_TRUE(server.Start(0).ok());

  // A busy registered worker for the window to sample.
  std::atomic<bool> stop{false};
  std::thread burner([&stop] {
    ThreadLease lease(ThreadRole::kWorker, "chrono-e2e-burn");
    volatile uint64_t sink = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 50000; ++i) sink += static_cast<uint64_t>(i);
    }
  });

  std::string threads = HttpGet(server.port(), "/threads");
  EXPECT_NE(threads.find("200 OK"), std::string::npos);
  EXPECT_TRUE(ValidateJson(Body(threads)).ok()) << Body(threads);
  EXPECT_NE(threads.find("chrono-stats"), std::string::npos);

  std::string collapsed =
      HttpGet(server.port(), "/profile?seconds=1&hz=499");
  EXPECT_NE(collapsed.find("200 OK"), std::string::npos);
  EXPECT_NE(Body(collapsed).find("worker;chrono-e2e-burn"),
            std::string::npos)
      << Body(collapsed);

  std::string json =
      HttpGet(server.port(), "/profile?seconds=1&hz=499&format=json");
  EXPECT_NE(json.find("200 OK"), std::string::npos);
  EXPECT_TRUE(ValidateJson(Body(json)).ok()) << Body(json);

  // Strict parameter validation.
  EXPECT_NE(HttpGet(server.port(), "/profile?seconds=0").find("400"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/profile?hz=9999").find("400"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/profile?format=svg").find("400"),
            std::string::npos);

  stop.store(true, std::memory_order_relaxed);
  burner.join();
  server.Stop();
}

TEST(StatsServerProfile, ProfileWithoutProfilerIs404) {
  MetricsRegistry registry;
  StatsServer server(&registry, nullptr);
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_NE(HttpGet(server.port(), "/profile").find("404"),
            std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace chrono::obs
