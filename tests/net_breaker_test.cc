// Circuit-breaker state machine tests: closed → open → half-open → closed
// transitions under an injected clock, probe-slot accounting, prefetch
// admission policy, and a multi-threaded hammer that TSan watches for
// races on the admission/result paths.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "net/circuit_breaker.h"

namespace chrono::net {
namespace {

using State = CircuitBreaker::State;
using Admission = CircuitBreaker::Admission;

CircuitBreaker::Options SmallOptions() {
  CircuitBreaker::Options opt;
  opt.failure_threshold = 3;
  opt.open_cooldown_us = 1'000;
  opt.half_open_probes = 1;
  opt.close_threshold = 2;
  return opt;
}

TEST(CircuitBreaker, StartsClosedAndAdmitsEverything) {
  uint64_t now = 0;
  CircuitBreaker breaker(SmallOptions(), [&now] { return now; });
  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_EQ(breaker.AdmitDemand(), Admission::kAdmitted);
  breaker.OnResult(Admission::kAdmitted, true);
  EXPECT_TRUE(breaker.AdmitPrefetch());
}

TEST(CircuitBreaker, ConsecutiveFailuresOpen) {
  uint64_t now = 0;
  CircuitBreaker breaker(SmallOptions(), [&now] { return now; });
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(breaker.AdmitDemand(), Admission::kAdmitted);
    breaker.OnResult(Admission::kAdmitted, false);
  }
  EXPECT_EQ(breaker.state(), State::kOpen);
  // Open: demand fails fast, prefetch is refused, counters tick.
  EXPECT_EQ(breaker.AdmitDemand(), Admission::kRejected);
  EXPECT_FALSE(breaker.AdmitPrefetch());
  EXPECT_EQ(breaker.demand_rejected(), 1u);
  EXPECT_EQ(breaker.prefetch_rejected(), 1u);
}

TEST(CircuitBreaker, SuccessResetsConsecutiveCount) {
  uint64_t now = 0;
  CircuitBreaker breaker(SmallOptions(), [&now] { return now; });
  for (int round = 0; round < 5; ++round) {
    breaker.OnResult(breaker.AdmitDemand(), false);
    breaker.OnResult(breaker.AdmitDemand(), false);
    breaker.OnResult(breaker.AdmitDemand(), true);  // streak broken
  }
  EXPECT_EQ(breaker.state(), State::kClosed);
}

TEST(CircuitBreaker, CooldownAdmitsOneProbeThenCloses) {
  uint64_t now = 0;
  CircuitBreaker breaker(SmallOptions(), [&now] { return now; });
  for (int i = 0; i < 3; ++i) {
    breaker.OnResult(breaker.AdmitDemand(), false);
  }
  ASSERT_EQ(breaker.state(), State::kOpen);
  // Before the cooldown elapses nothing is admitted.
  now += 999;
  EXPECT_EQ(breaker.AdmitDemand(), Admission::kRejected);
  // After the cooldown the next call probes; a second concurrent call is
  // still rejected (half_open_probes = 1).
  now += 1;
  Admission probe = breaker.AdmitDemand();
  EXPECT_EQ(probe, Admission::kProbe);
  EXPECT_EQ(breaker.state(), State::kHalfOpen);
  EXPECT_EQ(breaker.AdmitDemand(), Admission::kRejected);
  // Prefetch is not admitted while half-open: probes belong to demand.
  EXPECT_FALSE(breaker.AdmitPrefetch());
  // Two probe successes (close_threshold) re-close the breaker.
  breaker.OnResult(probe, true);
  ASSERT_EQ(breaker.state(), State::kHalfOpen);
  Admission probe2 = breaker.AdmitDemand();
  EXPECT_EQ(probe2, Admission::kProbe);
  breaker.OnResult(probe2, true);
  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_TRUE(breaker.AdmitPrefetch());
}

TEST(CircuitBreaker, ProbeFailureReopensAndRestartsCooldown) {
  uint64_t now = 0;
  CircuitBreaker breaker(SmallOptions(), [&now] { return now; });
  for (int i = 0; i < 3; ++i) {
    breaker.OnResult(breaker.AdmitDemand(), false);
  }
  now += 1'000;
  Admission probe = breaker.AdmitDemand();
  ASSERT_EQ(probe, Admission::kProbe);
  breaker.OnResult(probe, false);
  EXPECT_EQ(breaker.state(), State::kOpen);
  // The cooldown restarted at the probe failure: still rejecting.
  now += 999;
  EXPECT_EQ(breaker.AdmitDemand(), Admission::kRejected);
  now += 1;
  EXPECT_EQ(breaker.AdmitDemand(), Admission::kProbe);
}

TEST(CircuitBreaker, TransitionListenerSeesEveryEdge) {
  uint64_t now = 0;
  CircuitBreaker breaker(SmallOptions(), [&now] { return now; });
  std::vector<std::pair<State, State>> edges;
  breaker.SetTransitionListener(
      [&edges](State from, State to) { edges.emplace_back(from, to); });
  for (int i = 0; i < 3; ++i) {
    breaker.OnResult(breaker.AdmitDemand(), false);
  }
  now += 1'000;
  Admission probe = breaker.AdmitDemand();
  breaker.OnResult(probe, true);
  probe = breaker.AdmitDemand();
  breaker.OnResult(probe, true);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], std::make_pair(State::kClosed, State::kOpen));
  EXPECT_EQ(edges[1], std::make_pair(State::kOpen, State::kHalfOpen));
  EXPECT_EQ(edges[2], std::make_pair(State::kHalfOpen, State::kClosed));
  EXPECT_EQ(breaker.transitions(), 3u);
}

// Many threads race admissions, results, and the advancing clock through
// every state of the machine. TSan verifies the locking; the test itself
// verifies the breaker stays in a legal state and probe slots are never
// leaked (the machine keeps admitting probes after every storm).
TEST(CircuitBreaker, ConcurrentHammerKeepsInvariants) {
  CircuitBreaker::Options opt;
  opt.failure_threshold = 2;
  opt.open_cooldown_us = 50;
  opt.half_open_probes = 2;
  opt.close_threshold = 2;
  std::atomic<uint64_t> now{0};
  CircuitBreaker breaker(opt, [&now] { return now.load(); });
  std::atomic<uint64_t> transitions_seen{0};
  breaker.SetTransitionListener(
      [&transitions_seen](State, State) { ++transitions_seen; });

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&breaker, &now, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        now.fetch_add(7, std::memory_order_relaxed);
        if ((t + i) % 5 == 0) {
          breaker.AdmitPrefetch();
          continue;
        }
        Admission a = breaker.AdmitDemand();
        if (a == Admission::kRejected) continue;
        // Mixed outcomes keep the machine cycling through all states.
        breaker.OnResult(a, (i % 3) != 0);
      }
    });
  }
  for (auto& th : threads) th.join();

  State s = breaker.state();
  EXPECT_TRUE(s == State::kClosed || s == State::kOpen ||
              s == State::kHalfOpen);
  EXPECT_EQ(breaker.transitions(), transitions_seen.load());
  // No leaked probe slots: drive the machine to closed from wherever the
  // storm left it. From open, a cooldown and `close_threshold` successful
  // probes must always suffice.
  for (int round = 0; round < 8 && breaker.state() != State::kClosed;
       ++round) {
    now.fetch_add(1'000);
    Admission a = breaker.AdmitDemand();
    if (a != Admission::kRejected) breaker.OnResult(a, true);
  }
  EXPECT_EQ(breaker.state(), State::kClosed);
}

}  // namespace
}  // namespace chrono::net
