// End-to-end fault-tolerance tests for the wall-clock serving runtime:
// retries absorbing a background error rate, the no-auto-retry contract
// for writes, blackout → breaker-open → stale-serve degradation, health
// reporting, and exact reconciliation between the hot-path counters and
// the journaled fault events.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "net/circuit_breaker.h"
#include "obs/audit.h"
#include "obs/journal.h"
#include "runtime/server.h"
#include "sql/result_set.h"

namespace chrono::runtime {
namespace {

/// Collects every journaled event in memory for post-run assertions.
class CollectSink : public obs::JournalSink {
 public:
  void OnEvents(const obs::JournalEvent* events, size_t count) override {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.insert(events_.end(), events, events + count);
  }

  std::vector<obs::JournalEvent> Take() {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

 private:
  std::mutex mutex_;
  std::vector<obs::JournalEvent> events_;
};

class ChaosTest : public ::testing::Test {
 protected:
  ChaosTest() {
    auto setup = [&](const std::string& sql) {
      auto r = db_.ExecuteText(sql);
      EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    };
    setup("CREATE TABLE t (id INT, v TEXT)");
    for (int i = 0; i < 40; ++i) {
      setup("INSERT INTO t (id, v) VALUES (" + std::to_string(i) + ", 'v" +
            std::to_string(i) + "')");
    }
  }

  /// Baseline fault-tolerant config: no learning noise, instant backend,
  /// bounded deadlines so nothing can hang.
  ServerConfig ChaosConfig() {
    ServerConfig config;
    config.workers = 2;
    config.enable_learning = false;
    config.enable_combining = false;
    config.request_deadline_us = 50'000;
    config.attempt_timeout_us = 10'000;
    config.retry.max_attempts = 3;
    config.retry.initial_backoff_us = 200;
    config.retry.max_backoff_us = 2'000;
    config.journal_drain_ms = 0;  // manual Drain(): deterministic reads
    return config;
  }

  db::Database db_;
};

TEST_F(ChaosTest, RetriesAbsorbBackgroundErrorRate) {
  ServerConfig config = ChaosConfig();
  config.fault.error_pct = 20;
  config.fault.seed = 11;
  ChronoServer server(&db_, config);

  const int kReads = 300;
  int ok = 0;
  for (int i = 0; i < kReads; ++i) {
    std::string sql =
        "SELECT v FROM t WHERE id = " + std::to_string(i % 40);
    if (server.Submit(1, sql).get().ok()) ++ok;
  }
  ServerMetrics m = server.metrics();
  EXPECT_EQ(m.reads, static_cast<uint64_t>(kReads));
  // 20% per-attempt failures but three attempts per demand fetch: the
  // residual (0.2^3 per uncached read) must stay far below the raw rate.
  EXPECT_GE(ok, kReads * 95 / 100);
  EXPECT_GT(m.backend_retries, 0u);
  EXPECT_GT(m.faults_injected, 0u);
  EXPECT_EQ(m.errors, static_cast<uint64_t>(kReads - ok));
}

TEST_F(ChaosTest, WritesNeverAutoRetry) {
  ServerConfig config = ChaosConfig();
  config.fault.error_pct = 100;  // every backend call fails
  ChronoServer server(&db_, config);

  auto write = server.Submit(1, "UPDATE t SET v = 'x' WHERE id = 3").get();
  EXPECT_FALSE(write.ok());
  ServerMetrics m = server.metrics();
  EXPECT_EQ(m.writes, 1u);
  EXPECT_EQ(m.backend_retries, 0u) << "a write consumed retry budget";

  // The same failure on a read does retry (attempts 2 and 3).
  auto read = server.Submit(1, "SELECT v FROM t WHERE id = 3").get();
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(server.metrics().backend_retries, 2u);
}

TEST_F(ChaosTest, BlackoutTripsBreakerAndStaleServesWarmKeys) {
  ServerConfig config = ChaosConfig();
  config.fault.blackout_start_us = 400'000;
  config.fault.blackout_us = 600'000'000;  // outage outlasts the test
  config.breaker.failure_threshold = 2;
  config.breaker.open_cooldown_us = 600'000'000;  // stays open once tripped
  config.stale_serve_us = 10'000'000;
  ChronoServer server(&db_, config);

  // Healthy phase: warm one key, then supersede it with a write so the
  // writer's next lookup version-rejects the cached entry.
  auto warm = server.Submit(1, "SELECT v FROM t WHERE id = 7").get();
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(
      server.Submit(1, "UPDATE t SET v = 'fresh' WHERE id = 7").get().ok());
  EXPECT_TRUE(server.Health().ok);

  // Into the outage. Every backend call now hangs until its attempt
  // budget expires.
  std::this_thread::sleep_for(std::chrono::milliseconds(450));

  // The version-stale entry is the only answer left — and it still holds
  // the superseded row, which is exactly what stale-serving promises.
  auto stale = server.Submit(1, "SELECT v FROM t WHERE id = 7").get();
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  ASSERT_EQ((*stale)->row_count(), 1u);
  EXPECT_EQ((*stale)->rows()[0][0].AsString(), "v7");  // pre-write value
  ServerMetrics m = server.metrics();
  EXPECT_EQ(m.stale_serves, 1u);
  EXPECT_GT(m.backend_timeouts, 0u);

  // A cold key has no stale fallback; its failure is the second strike
  // that opens the breaker.
  EXPECT_FALSE(server.Submit(1, "SELECT v FROM t WHERE id = 21").get().ok());
  EXPECT_EQ(server.breaker().state(), net::CircuitBreaker::State::kOpen);
  ChronoServer::HealthStatus health = server.Health();
  EXPECT_FALSE(health.ok);
  EXPECT_EQ(health.reason, "circuit breaker open");

  // Open breaker: cold reads fail fast (no attempt budget burned), warm
  // stale keys keep serving.
  uint64_t timeouts_before = server.metrics().backend_timeouts;
  EXPECT_FALSE(server.Submit(1, "SELECT v FROM t WHERE id = 22").get().ok());
  EXPECT_TRUE(server.Submit(1, "SELECT v FROM t WHERE id = 7").get().ok());
  m = server.metrics();
  EXPECT_EQ(m.backend_timeouts, timeouts_before);
  EXPECT_GE(m.breaker_rejects, 2u);
  EXPECT_EQ(m.stale_serves, 2u);
}

TEST_F(ChaosTest, ChaosRunCompletesAndJournalReconciles) {
  ServerConfig config = ChaosConfig();
  config.workers = 4;
  config.fault.error_pct = 25;
  config.fault.spike_multiplier = 5;
  config.fault.blackout_start_us = 50'000;
  config.fault.blackout_us = 40'000;
  config.fault.blackout_period_us = 150'000;
  config.fault.seed = 5;
  config.breaker.failure_threshold = 3;
  config.breaker.open_cooldown_us = 30'000;
  config.stale_serve_us = 5'000'000;
  config.db_latency_us = 100;
  ChronoServer server(&db_, config);
  CollectSink sink;
  ASSERT_NE(server.journal(), nullptr);
  server.journal()->AddSink(&sink);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 150;
  std::vector<std::thread> clients;
  std::atomic<int> completed{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&server, &completed, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        int key = (t * 7 + i) % 40;
        std::string sql =
            i % 10 == 0
                ? "UPDATE t SET v = 'w' WHERE id = " + std::to_string(key)
                : "SELECT v FROM t WHERE id = " + std::to_string(key);
        // Bounded deadlines guarantee the future resolves; .get() must
        // never hang even mid-blackout.
        server.Submit(t, std::move(sql)).get();
        ++completed;
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(completed.load(), kThreads * kOpsPerThread);

  server.journal()->Drain();
  std::vector<obs::JournalEvent> events = sink.Take();
  uint64_t retries = 0, timeouts = 0, stales = 0, transitions = 0;
  uint64_t shed = 0, write_retries = 0;
  for (const obs::JournalEvent& e : events) {
    switch (static_cast<obs::JournalEventType>(e.type)) {
      case obs::JournalEventType::kBackendRetry:
        ++retries;
        if ((e.flags & obs::kJournalFlagWrite) != 0) ++write_retries;
        break;
      case obs::JournalEventType::kBackendTimeout:
        ++timeouts;
        break;
      case obs::JournalEventType::kStaleServe:
        ++stales;
        break;
      case obs::JournalEventType::kBreakerTransition:
        ++transitions;
        break;
      case obs::JournalEventType::kShed:
        ++shed;
        break;
      default:
        break;
    }
  }

  // Chaos really happened, and writes never consumed retry budget.
  ServerMetrics m = server.metrics();
  EXPECT_GT(m.faults_injected, 0u);
  EXPECT_EQ(write_retries, 0u);

  // Counters and journal agree event-for-event.
  EXPECT_EQ(retries, m.backend_retries);
  EXPECT_EQ(timeouts, m.backend_timeouts);
  EXPECT_EQ(stales, m.stale_serves);
  EXPECT_EQ(transitions, server.breaker().transitions());
  EXPECT_EQ(shed, m.prefetches_dropped + m.prefetches_shed_breaker);

  // The server's own audit fold sees the same availability numbers.
  ASSERT_NE(server.audit(), nullptr);
  obs::PrefetchAudit::Snapshot snap = server.audit()->snapshot();
  EXPECT_EQ(snap.availability.backend_retries, m.backend_retries);
  EXPECT_EQ(snap.availability.backend_timeouts, m.backend_timeouts);
  EXPECT_EQ(snap.availability.stale_serves, m.stale_serves);
}

}  // namespace
}  // namespace chrono::runtime
