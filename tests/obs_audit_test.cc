// Tests for the prefetch cost/benefit fold (PrefetchAudit): scoreboard
// arithmetic from synthetic event streams, the chrono_prefetch_*_total
// counter families it drives, and an end-to-end run through ChronoServer
// asserting the scraped counters reconcile exactly with the offline
// snapshot — the same guarantee tools/chrono_audit relies on.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "obs/audit.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/server.h"

namespace chrono::obs {
namespace {

JournalEvent Ev(JournalEventType type, uint64_t plan = 0, uint64_t src = 0,
                uint64_t tmpl = 0, uint64_t a = 0, uint64_t b = 0,
                uint64_t c = 0, uint8_t flags = 0) {
  JournalEvent event;
  event.type = type;
  event.ts_us = 1;  // folds ignore timestamps
  event.plan = plan;
  event.src = src;
  event.tmpl = tmpl;
  event.a = a;
  event.b = b;
  event.c = c;
  event.flags = flags;
  return event;
}

void Feed(PrefetchAudit* audit, const std::vector<JournalEvent>& events) {
  audit->OnEvents(events.data(), events.size());
}

const PrefetchAudit::Score* FindScore(
    const std::vector<PrefetchAudit::Score>& scores, const std::string& key) {
  for (const PrefetchAudit::Score& s : scores) {
    if (s.key == key) return &s;
  }
  return nullptr;
}

/// Sums one counter family's instances carrying `label_key`, e.g. all
/// chrono_prefetch_installed_total{plan="..."} samples.
uint64_t SumCounters(const MetricsRegistry& registry, const std::string& name,
                     const std::string& label_key) {
  uint64_t total = 0;
  for (const MetricSnapshot& m : registry.Snapshot().metrics) {
    if (m.name != name) continue;
    for (const auto& [k, v] : m.labels) {
      if (k == label_key) {
        total += static_cast<uint64_t>(m.value);
        break;
      }
    }
  }
  return total;
}

TEST(PrefetchAudit, FoldsPlanLifecycleIntoScoreboards) {
  PrefetchAudit audit;
  Feed(&audit, {
      // Plan instance 100 rooted at template 5, two slots.
      Ev(JournalEventType::kPlanMined, 100, 0, 5, /*a=*/2),
      Ev(JournalEventType::kCombinedIssued, 100),
      Ev(JournalEventType::kCombinedFetched, 100, 0, 0, /*rows=*/10,
         /*bytes=*/5000, /*round_us=*/2000, kJournalFlagOk),
      Ev(JournalEventType::kEntryInstalled, 100, 0, 5, /*bytes=*/300),
      Ev(JournalEventType::kEntryInstalled, 100, 5, 7, /*bytes=*/400),
      Ev(JournalEventType::kEntryUsed, 100, 5, 7, /*bytes=*/400,
         /*ttfu_us=*/1500),
      // The root slice dies unused: that is the wasted half of the plan.
      Ev(JournalEventType::kEntryEvicted, 100, 0, 5, /*bytes=*/300,
         /*resident_us=*/900, 0, /*flags=*/kJournalEvictCapacity),
  });

  PrefetchAudit::Snapshot snap = audit.snapshot();
  EXPECT_EQ(snap.events_folded, 7u);

  const PrefetchAudit::Score* plan = FindScore(snap.plans, "5");
  ASSERT_NE(plan, nullptr) << "plan keyed by root template";
  EXPECT_EQ(plan->mined, 1u);
  EXPECT_EQ(plan->issued, 1u);
  EXPECT_EQ(plan->fetch_ok, 1u);
  EXPECT_EQ(plan->fetch_failed, 0u);
  EXPECT_EQ(plan->rows_fetched, 10u);
  EXPECT_EQ(plan->wan_bytes, 5000u);
  EXPECT_EQ(plan->installed, 2u);
  EXPECT_EQ(plan->installed_bytes, 700u);
  EXPECT_EQ(plan->used, 1u);
  EXPECT_EQ(plan->evicted_unused, 1u);
  EXPECT_EQ(plan->evicted_used, 0u);
  EXPECT_EQ(plan->wasted_bytes, 300u);
  EXPECT_DOUBLE_EQ(plan->precision, 0.5);
  EXPECT_GT(plan->median_ttfu_us, 0.0);

  const PrefetchAudit::Score* root_edge = FindScore(snap.edges, "root");
  ASSERT_NE(root_edge, nullptr);
  EXPECT_EQ(root_edge->installed, 1u);
  EXPECT_EQ(root_edge->used, 0u);
  EXPECT_EQ(root_edge->evicted_unused, 1u);
  EXPECT_EQ(root_edge->wasted_bytes, 300u);

  const PrefetchAudit::Score* edge = FindScore(snap.edges, "5->7");
  ASSERT_NE(edge, nullptr) << "transition edge keyed src->dst";
  EXPECT_EQ(edge->installed, 1u);
  EXPECT_EQ(edge->used, 1u);
  EXPECT_DOUBLE_EQ(edge->precision, 1.0);
  EXPECT_EQ(edge->wasted_bytes, 0u);

  EXPECT_EQ(snap.TotalInstalled(), 2u);
  EXPECT_EQ(snap.TotalUsed(), 1u);
  EXPECT_EQ(snap.TotalWastedBytes(), 300u);
  EXPECT_DOUBLE_EQ(snap.OverallPrecision(), 0.5);
}

TEST(PrefetchAudit, UnknownPlanAndInvalidationWasteAccounting) {
  PrefetchAudit audit;
  Feed(&audit, {
      // Plan 999 was never mined (its kPlanMined event was dropped):
      // everything folds under "unknown" instead of being lost.
      Ev(JournalEventType::kEntryInstalled, 999, 0, 4, /*bytes=*/500),
      Ev(JournalEventType::kEntryInvalidated, 999, 0, 4, /*bytes=*/500,
         /*resident_us=*/100, 0, /*flags=*/0),  // unused: wasted
      Ev(JournalEventType::kEntryInstalled, 999, 0, 4, /*bytes=*/200),
      Ev(JournalEventType::kEntryUsed, 999, 0, 4, /*bytes=*/200, 10),
      Ev(JournalEventType::kEntryInvalidated, 999, 0, 4, /*bytes=*/200,
         /*resident_us=*/300, 0, /*flags=*/kJournalFlagUsed),  // earned
  });

  PrefetchAudit::Snapshot snap = audit.snapshot();
  const PrefetchAudit::Score* plan = FindScore(snap.plans, "unknown");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->installed, 2u);
  EXPECT_EQ(plan->invalidated, 2u);
  EXPECT_EQ(plan->invalidated_unused, 1u);
  // Only the entry that died before any hit counts as wasted WAN bytes.
  EXPECT_EQ(plan->wasted_bytes, 500u);
  EXPECT_EQ(snap.TotalInvalidated(), 2u);
  EXPECT_EQ(snap.TotalWastedBytes(), 500u);
}

TEST(PrefetchAudit, FoldsRequestOutcomesAndStageProfile) {
  PrefetchAudit audit;
  JournalEvent timed = Ev(JournalEventType::kRequest, 0, 0, /*tmpl=*/9,
                          PackDurations(10, 20), PackDurations(30, 40),
                          PackDurations(5, 105),
                          static_cast<uint8_t>(TraceOutcome::kRemotePlain));
  // A simulator-style event: outcome counts, but no wall-clock latency.
  JournalEvent no_latency =
      Ev(JournalEventType::kRequest, 0, 0, /*tmpl=*/9, 0, 0, 0,
         static_cast<uint8_t>(TraceOutcome::kCacheHit) |
             kJournalFlagNoLatency);
  Feed(&audit, {timed, no_latency});

  PrefetchAudit::Snapshot snap = audit.snapshot();
  EXPECT_EQ(snap.requests, 2u);
  EXPECT_EQ(snap.requests_with_latency, 1u);
  EXPECT_EQ(snap.outcome_counts[static_cast<int>(TraceOutcome::kRemotePlain)],
            1u);
  EXPECT_EQ(snap.outcome_counts[static_cast<int>(TraceOutcome::kCacheHit)],
            1u);
  const uint64_t expected[PrefetchAudit::kStageSlots] = {10, 20, 30,
                                                         40, 5,  105};
  for (int s = 0; s < PrefetchAudit::kStageSlots; ++s) {
    EXPECT_EQ(snap.stage_sum_us[s], expected[s]) << "stage " << s;
  }

  ASSERT_EQ(snap.templates.size(), 1u);
  EXPECT_EQ(snap.templates[0].tmpl, 9u);
  EXPECT_EQ(snap.templates[0].requests, 2u);
  const PrefetchAudit::OutcomeLatency& plain =
      snap.templates[0]
          .outcomes[static_cast<int>(TraceOutcome::kRemotePlain)];
  EXPECT_EQ(plain.count, 1u);
  EXPECT_DOUBLE_EQ(plain.mean_us, 105.0);
}

TEST(PrefetchAudit, DrivesCounterFamiliesThatReconcileWithSnapshot) {
  MetricsRegistry registry;
  PrefetchAudit audit(&registry);
  Feed(&audit, {
      Ev(JournalEventType::kPlanMined, 1, 0, 5, 2),
      Ev(JournalEventType::kEntryInstalled, 1, 0, 5, 300),
      Ev(JournalEventType::kEntryInstalled, 1, 5, 7, 400),
      Ev(JournalEventType::kEntryUsed, 1, 5, 7, 400, 10),
      Ev(JournalEventType::kEntryEvicted, 1, 0, 5, 300, 100, 0, 0),
      Ev(JournalEventType::kEntryInstalled, 2, 0, 4, 100),  // unknown plan
      Ev(JournalEventType::kEntryInvalidated, 2, 0, 4, 100, 50, 0, 0),
  });

  PrefetchAudit::Snapshot snap = audit.snapshot();
  // The counters and the snapshot are two views of one fold: sums over
  // either label dimension must equal the snapshot totals exactly.
  for (const char* dim : {"plan", "edge"}) {
    EXPECT_EQ(SumCounters(registry, "chrono_prefetch_installed_total", dim),
              snap.TotalInstalled())
        << dim;
    EXPECT_EQ(SumCounters(registry, "chrono_prefetch_used_total", dim),
              snap.TotalUsed())
        << dim;
    EXPECT_EQ(SumCounters(registry, "chrono_prefetch_invalidated_total", dim),
              snap.TotalInvalidated())
        << dim;
    EXPECT_EQ(SumCounters(registry, "chrono_prefetch_wasted_bytes_total", dim),
              snap.TotalWastedBytes())
        << dim;
  }
  EXPECT_EQ(snap.TotalInstalled(), 3u);
  EXPECT_EQ(snap.TotalUsed(), 1u);
  EXPECT_EQ(snap.TotalInvalidated(), 1u);
  EXPECT_EQ(snap.TotalWastedBytes(), 400u);  // 300 evicted + 100 invalidated
}

// End-to-end: a real ChronoServer run whose scraped chrono_prefetch_*
// counters must reconcile with the audit snapshot from the same journal —
// the property that makes /metrics and chrono_audit interchangeable.
TEST(PrefetchAuditE2E, ServerCountersReconcileWithAuditSnapshot) {
  db::Database db;
  ASSERT_TRUE(db.ExecuteText("CREATE TABLE t (id INT, v TEXT)").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.ExecuteText("INSERT INTO t (id, v) VALUES (" +
                               std::to_string(i) + ", 'v" +
                               std::to_string(i) + "')")
                    .ok());
  }

  MetricsRegistry registry;
  runtime::ServerConfig config;
  config.workers = 2;
  config.extract_every = 2;
  config.registry = &registry;
  runtime::ChronoServer server(&db, config);
  ASSERT_NE(server.journal(), nullptr);
  ASSERT_NE(server.audit(), nullptr);

  // The same learnable pattern as the runtime tests: an id read drives a
  // dependent lookup, so the graph mines a combined plan and prefetches.
  for (int round = 0; round < 12; ++round) {
    int id = round % 4;
    ASSERT_TRUE(server
                    .Submit(1, "SELECT id FROM t WHERE id = " +
                                   std::to_string(id))
                    .get()
                    .ok());
    ASSERT_TRUE(server
                    .Submit(1, "SELECT v FROM t WHERE id = " +
                                   std::to_string(id))
                    .get()
                    .ok());
  }
  server.Shutdown();  // drains queued background prefetches
  runtime::ServerMetrics m = server.metrics();
  server.journal()->Stop();  // final drain into the audit sink
  EXPECT_EQ(server.journal()->events_dropped(), 0u);

  PrefetchAudit::Snapshot snap = server.audit()->snapshot();
  EXPECT_EQ(snap.requests, 24u);  // one kRequest per served statement
  EXPECT_GT(m.remote_combined + m.predictions_cached, 0u)
      << "workload must actually trigger prefetching";
  // Every predictively cached entry produced exactly one kEntryInstalled.
  EXPECT_EQ(snap.TotalInstalled(), m.predictions_cached);
  if (m.predictions_cached > 0) {
    EXPECT_FALSE(snap.plans.empty());
    EXPECT_FALSE(snap.edges.empty());
  }

  for (const char* dim : {"plan", "edge"}) {
    EXPECT_EQ(SumCounters(registry, "chrono_prefetch_installed_total", dim),
              snap.TotalInstalled())
        << dim;
    EXPECT_EQ(SumCounters(registry, "chrono_prefetch_used_total", dim),
              snap.TotalUsed())
        << dim;
    EXPECT_EQ(SumCounters(registry, "chrono_prefetch_invalidated_total", dim),
              snap.TotalInvalidated())
        << dim;
    EXPECT_EQ(SumCounters(registry, "chrono_prefetch_wasted_bytes_total", dim),
              snap.TotalWastedBytes())
        << dim;
  }
}

}  // namespace
}  // namespace chrono::obs
