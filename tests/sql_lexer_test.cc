#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace chrono::sql {
namespace {

std::vector<Token> MustTokenize(std::string_view s) {
  auto result = Tokenize(s);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(Lexer, KeywordsUppercasedIdentifiersLowercased) {
  auto tokens = MustTokenize("SELECT Foo FROM Bar");
  ASSERT_EQ(tokens.size(), 5u);  // + end
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens[1].kind, Token::Kind::kIdentifier);
  EXPECT_EQ(tokens[1].text, "foo");
  EXPECT_TRUE(tokens[2].IsKeyword("FROM"));
  EXPECT_EQ(tokens[3].text, "bar");
  EXPECT_EQ(tokens[4].kind, Token::Kind::kEnd);
}

TEST(Lexer, KeywordsAreCaseInsensitive) {
  auto tokens = MustTokenize("select sElEcT SELECT");
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(tokens[i].IsKeyword("SELECT"));
}

TEST(Lexer, IntegerLiteral) {
  auto tokens = MustTokenize("123");
  EXPECT_EQ(tokens[0].kind, Token::Kind::kInt);
  EXPECT_EQ(tokens[0].int_value, 123);
}

TEST(Lexer, DoubleLiterals) {
  auto tokens = MustTokenize("1.5 2e3 0.25");
  EXPECT_EQ(tokens[0].kind, Token::Kind::kDouble);
  EXPECT_DOUBLE_EQ(tokens[0].double_value, 1.5);
  EXPECT_EQ(tokens[1].kind, Token::Kind::kDouble);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 2000.0);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 0.25);
}

TEST(Lexer, StringLiteralWithEscapedQuote) {
  auto tokens = MustTokenize("'it''s here'");
  EXPECT_EQ(tokens[0].kind, Token::Kind::kString);
  EXPECT_EQ(tokens[0].text, "it's here");
}

TEST(Lexer, EmptyString) {
  auto tokens = MustTokenize("''");
  EXPECT_EQ(tokens[0].kind, Token::Kind::kString);
  EXPECT_EQ(tokens[0].text, "");
}

TEST(Lexer, UnterminatedStringFails) {
  auto result = Tokenize("SELECT 'oops");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kParseError);
}

TEST(Lexer, TwoCharOperators) {
  auto tokens = MustTokenize("<> <= >= != ||");
  EXPECT_TRUE(tokens[0].IsSymbol("<>"));
  EXPECT_TRUE(tokens[1].IsSymbol("<="));
  EXPECT_TRUE(tokens[2].IsSymbol(">="));
  EXPECT_TRUE(tokens[3].IsSymbol("<>"));  // != normalised
  EXPECT_TRUE(tokens[4].IsSymbol("||"));
}

TEST(Lexer, SingleCharSymbols) {
  auto tokens = MustTokenize("( ) , . ? = < > + - * /");
  const char* expected[] = {"(", ")", ",", ".", "?", "=",
                            "<", ">", "+", "-", "*", "/"};
  for (size_t i = 0; i < 12; ++i) EXPECT_TRUE(tokens[i].IsSymbol(expected[i]));
}

TEST(Lexer, SemicolonIgnored) {
  auto tokens = MustTokenize("SELECT 1;");
  EXPECT_EQ(tokens.size(), 3u);  // SELECT, 1, end
}

TEST(Lexer, UnexpectedCharacterFails) {
  auto result = Tokenize("SELECT @foo");
  EXPECT_FALSE(result.ok());
}

TEST(Lexer, OffsetsTrackPositions) {
  auto tokens = MustTokenize("SELECT a");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 7u);
}

TEST(Lexer, UnderscoreIdentifiers) {
  auto tokens = MustTokenize("__rowid wi_s_symb _x");
  EXPECT_EQ(tokens[0].text, "__rowid");
  EXPECT_EQ(tokens[1].text, "wi_s_symb");
  EXPECT_EQ(tokens[2].text, "_x");
}

TEST(Lexer, WhitespaceVariantsEquivalent) {
  auto a = MustTokenize("SELECT  a \n\t FROM b");
  auto b = MustTokenize("SELECT a FROM b");
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].text, b[i].text);
  }
}

}  // namespace
}  // namespace chrono::sql
