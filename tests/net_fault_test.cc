// Fault-injector tests: a disabled injector is free, decision sequences
// are deterministic per seed, error rates track the configured
// percentage, and blackout windows (one-shot and periodic) cover exactly
// the configured span of the caller's timeline.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/fault_injector.h"

namespace chrono::net {
namespace {

TEST(FaultInjector, DefaultIsDisabledAndDecidesNothing) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  FaultDecision d = injector.Decide(1'000);
  EXPECT_FALSE(d.fail);
  EXPECT_FALSE(d.blackout);
  EXPECT_EQ(d.latency_multiplier, 1.0);
  EXPECT_EQ(injector.faults_injected(), 0u);
}

TEST(FaultInjector, ZeroedOptionsStayDisabled) {
  FaultOptions opt;  // error 0, spike 1.0, blackout_us 0
  FaultInjector injector(opt);
  EXPECT_FALSE(injector.enabled());
}

TEST(FaultInjector, SameSeedSameDecisionSequence) {
  FaultOptions opt;
  opt.error_pct = 40;
  opt.spike_multiplier = 8.0;
  opt.spike_pct = 25;
  opt.seed = 1234;
  FaultInjector a(opt);
  FaultInjector b(opt);
  for (int i = 0; i < 500; ++i) {
    FaultDecision da = a.Decide(0);
    FaultDecision db = b.Decide(0);
    EXPECT_EQ(da.fail, db.fail);
    EXPECT_EQ(da.latency_multiplier, db.latency_multiplier);
  }
  opt.seed = 99;
  FaultInjector c(opt);
  int diverged = 0;
  for (int i = 0; i < 500; ++i) {
    FaultDecision da = a.Decide(0);
    FaultDecision dc = c.Decide(0);
    if (da.fail != dc.fail ||
        da.latency_multiplier != dc.latency_multiplier) {
      ++diverged;
    }
  }
  EXPECT_GT(diverged, 0);
}

TEST(FaultInjector, ErrorRateTracksConfiguredPercentage) {
  FaultOptions opt;
  opt.error_pct = 30;
  opt.seed = 7;
  FaultInjector injector(opt);
  ASSERT_TRUE(injector.enabled());
  const int kCalls = 20'000;
  int failed = 0;
  for (int i = 0; i < kCalls; ++i) {
    if (injector.Decide(0).fail) ++failed;
  }
  double rate = 100.0 * failed / kCalls;
  EXPECT_NEAR(rate, 30.0, 1.5);
  EXPECT_EQ(injector.faults_injected(), static_cast<uint64_t>(failed));
  EXPECT_EQ(injector.decisions(), static_cast<uint64_t>(kCalls));
}

TEST(FaultInjector, SpikeMultiplierStaysInJitterBand) {
  FaultOptions opt;
  opt.spike_multiplier = 10.0;
  opt.spike_pct = 100;  // every call spikes
  FaultInjector injector(opt);
  for (int i = 0; i < 1'000; ++i) {
    FaultDecision d = injector.Decide(0);
    ASSERT_FALSE(d.fail);
    EXPECT_GE(d.latency_multiplier, 5.0);
    EXPECT_LE(d.latency_multiplier, 10.0);
  }
  EXPECT_EQ(injector.spikes(), 1'000u);
}

TEST(FaultInjector, BlackoutWindowCoversExactSpan) {
  FaultOptions opt;
  opt.blackout_start_us = 1'000'000;
  opt.blackout_us = 500'000;
  FaultInjector injector(opt);
  ASSERT_TRUE(injector.enabled());
  EXPECT_FALSE(injector.InBlackout(999'999));
  EXPECT_TRUE(injector.InBlackout(1'000'000));
  EXPECT_TRUE(injector.InBlackout(1'499'999));
  EXPECT_FALSE(injector.InBlackout(1'500'000));
  // Inside the window every call fails, flagged as a blackout failure.
  FaultDecision d = injector.Decide(1'200'000);
  EXPECT_TRUE(d.fail);
  EXPECT_TRUE(d.blackout);
  d = injector.Decide(2'000'000);
  EXPECT_FALSE(d.fail);
  EXPECT_EQ(injector.blackout_faults(), 1u);
}

TEST(FaultInjector, PeriodicBlackoutRepeats) {
  FaultOptions opt;
  opt.blackout_start_us = 100;
  opt.blackout_us = 50;
  opt.blackout_period_us = 1'000;
  FaultInjector injector(opt);
  for (uint64_t period = 0; period < 5; ++period) {
    uint64_t base = 100 + period * 1'000;
    EXPECT_FALSE(injector.InBlackout(base - 1)) << period;
    EXPECT_TRUE(injector.InBlackout(base)) << period;
    EXPECT_TRUE(injector.InBlackout(base + 49)) << period;
    EXPECT_FALSE(injector.InBlackout(base + 50)) << period;
  }
  // Times before the first window never black out.
  EXPECT_FALSE(injector.InBlackout(0));
  EXPECT_FALSE(injector.InBlackout(99));
}

}  // namespace
}  // namespace chrono::net
