// Property sweep: over randomised data sets (TEST_P on seeds), combining a
// dependency graph with EITHER strategy, executing it, and splitting the
// result must reproduce exactly what sequential execution of the original
// queries would have returned — including duplicate values, empty
// iterations, and left-join fan-out.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/combiner_cte.h"
#include "core/combiner_lateral.h"
#include "core/result_splitter.h"
#include "db/database.h"
#include "sql/template.h"

namespace chrono::core {
namespace {

using sql::Value;

class CombinerProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    ASSERT_TRUE(db_.ExecuteText("CREATE TABLE watch_item (wi_wl_id bigint, "
                                "wi_s_symb text)")
                    .ok());
    ASSERT_TRUE(
        db_.ExecuteText(
               "CREATE TABLE security (s_symb text, s_num_out bigint)")
            .ok());
    ASSERT_TRUE(db_.ExecuteText("CREATE TABLE bid (b_symb text, b_amount "
                                "double)")
                    .ok());

    // Random symbols; some duplicated in the watch list, some missing from
    // `security`, some with multiple bid rows, some with none.
    int64_t symbols = rng.NextInt(3, 10);
    for (int64_t s = 0; s < symbols; ++s) {
      std::string sym = "S" + std::to_string(s);
      if (rng.NextBool(0.8)) {
        ASSERT_TRUE(db_.ExecuteText("INSERT INTO security VALUES ('" + sym +
                                    "', " + std::to_string(rng.NextInt(1, 999)) +
                                    ")")
                        .ok());
      }
      int64_t bids = rng.NextInt(0, 3);
      for (int64_t b = 0; b < bids; ++b) {
        ASSERT_TRUE(db_.ExecuteText("INSERT INTO bid VALUES ('" + sym + "', " +
                                    std::to_string(rng.NextInt(1, 500)) + ".5)")
                        .ok());
      }
    }
    int64_t items = rng.NextInt(2, 12);
    for (int64_t i = 0; i < items; ++i) {
      std::string sym = "S" + std::to_string(rng.NextInt(0, symbols - 1));
      ASSERT_TRUE(db_.ExecuteText("INSERT INTO watch_item VALUES (1, '" + sym +
                                  "')")
                      .ok());
    }
  }

  TemplateId Register(const std::string& text) {
    auto parsed = sql::AnalyzeQuery(text);
    EXPECT_TRUE(parsed.ok());
    latest_[parsed->tmpl->id] = parsed->params;
    return registry_.Register(parsed->tmpl);
  }

  sql::ResultSet Direct(const std::string& text) {
    auto outcome = db_.ExecuteText(text);
    EXPECT_TRUE(outcome.ok()) << text << " -> " << outcome.status().ToString();
    return outcome.ok() ? outcome->result : sql::ResultSet();
  }

  void VerifyCombined(const CombinedQuery& combined, size_t min_entries) {
    auto outcome = db_.ExecuteText(combined.sql);
    ASSERT_TRUE(outcome.ok()) << combined.sql << " -> "
                              << outcome.status().ToString();
    auto split = SplitResult(combined, outcome->result, registry_);
    ASSERT_TRUE(split.ok());
    EXPECT_GE(split->size(), min_entries);
    for (const auto& entry : *split) {
      EXPECT_EQ(*entry.result, Direct(entry.key)) << entry.key;
      // The carried params must re-render to the same key.
      const sql::QueryTemplate* tmpl = registry_.Find(entry.tmpl);
      ASSERT_NE(tmpl, nullptr);
      EXPECT_EQ(sql::RenderBoundText(*tmpl, entry.params), entry.key);
    }
  }

  db::Database db_;
  TemplateRegistry registry_;
  std::map<TemplateId, std::vector<Value>> latest_;
};

TEST_P(CombinerProperty, CteJoinMatchesSequentialExecution) {
  TemplateId q1 =
      Register("SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 1");
  TemplateId q2 =
      Register("SELECT s_num_out FROM security WHERE s_symb = 'S0'");
  DependencyGraph g;
  g.nodes = {q1, q2};
  g.param_counts = {{q1, 1}, {q2, 1}};
  g.edges.push_back({q1, q2, {{"wi_s_symb", 0}}});
  g.Normalize();

  CombineInput input{&g, &registry_, &latest_};
  ASSERT_TRUE(CteJoinCombiner::CanHandle(input));
  auto combined = CteJoinCombiner::Combine(input);
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  VerifyCombined(*combined, 2);
}

TEST_P(CombinerProperty, LateralMatchesSequentialExecution) {
  TemplateId q1 =
      Register("SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 1");
  TemplateId q2 = Register(
      "SELECT max(b_amount), count(*) FROM bid WHERE b_symb = 'S0'");
  DependencyGraph g;
  g.nodes = {q1, q2};
  g.param_counts = {{q1, 1}, {q2, 1}};
  g.edges.push_back({q1, q2, {{"wi_s_symb", 0}}});
  g.Normalize();

  CombineInput input{&g, &registry_, &latest_};
  ASSERT_TRUE(LateralUnionCombiner::CanHandle(input));
  auto combined = LateralUnionCombiner::Combine(input);
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  VerifyCombined(*combined, 2);
}

TEST_P(CombinerProperty, SiblingGraphBothStrategies) {
  TemplateId q1 =
      Register("SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 1");
  TemplateId q2 =
      Register("SELECT s_num_out FROM security WHERE s_symb = 'S0'");
  TemplateId q3 = Register("SELECT b_amount FROM bid WHERE b_symb = 'S0'");
  DependencyGraph g;
  g.nodes = {q1, q2, q3};
  g.param_counts = {{q1, 1}, {q2, 1}, {q3, 1}};
  g.edges.push_back({q1, q2, {{"wi_s_symb", 0}}});
  g.edges.push_back({q1, q3, {{"wi_s_symb", 0}}});
  g.Normalize();

  CombineInput input{&g, &registry_, &latest_};
  auto cte = CteJoinCombiner::Combine(input);
  ASSERT_TRUE(cte.ok()) << cte.status().ToString();
  VerifyCombined(*cte, 3);
  // Two multi-row siblings share a topological height: the lateral
  // strategy's row-number alignment would drop rows, so it must refuse
  // (the CTE strategy above covers this shape).
  auto lateral = LateralUnionCombiner::Combine(input);
  EXPECT_FALSE(lateral.ok());
  EXPECT_FALSE(LateralUnionCombiner::CanHandle(input));
}

TEST_P(CombinerProperty, MixedCardinalitySiblingsViaLateral) {
  // One multi-row sibling (bid list) + one single-row aggregate sibling:
  // the lateral strategy emits the multi-row query first at the height and
  // aligns the aggregate on row number 1 — lossless.
  TemplateId q1 =
      Register("SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 1");
  TemplateId q2 = Register("SELECT b_amount FROM bid WHERE b_symb = 'S0'");
  TemplateId q3 = Register(
      "SELECT max(b_amount), count(*) FROM bid WHERE b_symb = 'S0'");
  DependencyGraph g;
  g.nodes = {q1, q2, q3};
  g.param_counts = {{q1, 1}, {q2, 1}, {q3, 1}};
  g.edges.push_back({q1, q2, {{"wi_s_symb", 0}}});
  g.edges.push_back({q1, q3, {{"wi_s_symb", 0}}});
  g.Normalize();

  CombineInput input{&g, &registry_, &latest_};
  ASSERT_TRUE(LateralUnionCombiner::CanHandle(input));
  auto lateral = LateralUnionCombiner::Combine(input);
  ASSERT_TRUE(lateral.ok()) << lateral.status().ToString();
  VerifyCombined(*lateral, 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CombinerProperty,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace chrono::core
