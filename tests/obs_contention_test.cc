// Lock-contention telemetry tests (DESIGN.md §16): TimedMutex /
// TimedSharedMutex wait and hold accounting, the disarmed fast path
// recording nothing, histogram correctness under a multi-thread storm
// (the TSan job runs this file), the /contention ranking document, and an
// end-to-end ChronoServer scrape showing the retrofitted sites.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "db/database.h"
#include "obs/contention.h"
#include "obs/metrics.h"
#include "obs/stats_server.h"
#include "runtime/server.h"

namespace chrono::obs {
namespace {

TEST(TimedMutex, UncontendedAcquisitionsRecordHoldsButNoWaits) {
  MetricsRegistry metrics;
  ContentionRegistry contention(&metrics);
  TimedMutex mutex(contention.Site("test.uncontended"));
  for (int i = 0; i < 100; ++i) {
    std::lock_guard<TimedMutex> lock(mutex);
  }
  LockSite* site = contention.Site("test.uncontended");
  EXPECT_EQ(site->acquisitions(), 100u);
  EXPECT_EQ(site->contended(), 0u);
  EXPECT_EQ(site->wait_snapshot().count, 0u);
  EXPECT_EQ(site->hold_snapshot().count, 100u);
}

TEST(TimedMutex, ContendedAcquisitionRecordsWait) {
  MetricsRegistry metrics;
  ContentionRegistry contention(&metrics);
  TimedMutex mutex(contention.Site("test.contended"));

  std::atomic<bool> held{false};
  std::thread holder([&] {
    std::lock_guard<TimedMutex> lock(mutex);
    held.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  while (!held.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  {
    std::lock_guard<TimedMutex> lock(mutex);  // blocks ~50 ms
  }
  holder.join();

  LockSite* site = contention.Site("test.contended");
  EXPECT_EQ(site->acquisitions(), 2u);
  EXPECT_EQ(site->contended(), 1u);
  HistogramSnapshot wait = site->wait_snapshot();
  EXPECT_EQ(wait.count, 1u);
  // The blocked thread waited most of the 50 ms hold; 20 ms is a safe
  // lower bound even on a loaded CI box.
  EXPECT_GE(wait.sum, 20'000'000.0);
  EXPECT_EQ(site->hold_snapshot().count, 2u);
}

TEST(TimedMutex, DisarmedRecordsNothing) {
  MetricsRegistry metrics;
  ContentionRegistry contention(&metrics);
  contention.SetArmed(false);
  TimedMutex mutex(contention.Site("test.disarmed"));
  for (int i = 0; i < 50; ++i) {
    std::lock_guard<TimedMutex> lock(mutex);
  }
  LockSite* site = contention.Site("test.disarmed");
  EXPECT_EQ(site->acquisitions(), 0u);
  EXPECT_EQ(site->contended(), 0u);
  EXPECT_EQ(site->hold_snapshot().count, 0u);
}

TEST(TimedMutex, NullSiteBehavesLikePlainMutex) {
  TimedMutex mutex;  // no site: the std::mutex passthrough
  {
    std::lock_guard<TimedMutex> lock(mutex);
  }
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(TimedSharedMutex, ReaderWaitRecordedUnderWriter) {
  MetricsRegistry metrics;
  ContentionRegistry contention(&metrics);
  TimedSharedMutex mutex(contention.Site("test.rw.write"),
                         contention.Site("test.rw.read"));

  std::atomic<bool> held{false};
  std::thread writer([&] {
    std::unique_lock<TimedSharedMutex> lock(mutex);
    held.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  while (!held.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  {
    std::shared_lock<TimedSharedMutex> lock(mutex);  // blocks on the writer
  }
  writer.join();

  LockSite* read_site = contention.Site("test.rw.read");
  LockSite* write_site = contention.Site("test.rw.write");
  EXPECT_EQ(read_site->acquisitions(), 1u);
  EXPECT_EQ(read_site->contended(), 1u);
  EXPECT_GE(read_site->wait_snapshot().sum, 20'000'000.0);
  EXPECT_EQ(write_site->acquisitions(), 1u);
  EXPECT_EQ(write_site->hold_snapshot().count, 1u);
}

TEST(TimedMutex, StormAccountingIsExact) {
  // 8 threads x 10k critical sections on one mutex: the counter the lock
  // protects and the telemetry must both come out exact. This is the
  // TSan-job workhorse — wait/hold stamps, counter increments and
  // histogram records all race here if the discipline is wrong.
  constexpr int kThreads = 8;
  constexpr int kIters = 10'000;
  MetricsRegistry metrics;
  ContentionRegistry contention(&metrics);
  TimedMutex mutex(contention.Site("test.storm"));
  uint64_t counter = 0;  // guarded by mutex

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<TimedMutex> lock(mutex);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads) * kIters);
  LockSite* site = contention.Site("test.storm");
  EXPECT_EQ(site->acquisitions(), static_cast<uint64_t>(kThreads) * kIters);
  // Every armed acquisition records exactly one hold; waits only for the
  // contended subset.
  EXPECT_EQ(site->hold_snapshot().count,
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_LE(site->contended(), site->acquisitions());
  EXPECT_EQ(site->wait_snapshot().count, site->contended());
}

TEST(ContentionRegistry, SiteIsGetOrCreate) {
  MetricsRegistry metrics;
  ContentionRegistry contention(&metrics);
  LockSite* a = contention.Site("same");
  LockSite* b = contention.Site("same");
  EXPECT_EQ(a, b);
  EXPECT_NE(contention.Site("other"), a);
}

TEST(ContentionRegistry, MetricsLandInTheSharedRegistry) {
  MetricsRegistry metrics;
  ContentionRegistry contention(&metrics);
  TimedMutex mutex(contention.Site("test.export"));
  {
    std::lock_guard<TimedMutex> lock(mutex);
  }
  RegistrySnapshot snap = metrics.Snapshot();
  EXPECT_NE(snap.Find("chrono_lock_acquisitions_total",
                      {{"site", "test.export"}}),
            nullptr);
  EXPECT_NE(snap.Find("chrono_lock_hold_ns", {{"site", "test.export"}}),
            nullptr);
}

TEST(ContentionRegistry, JsonRanksSitesByWait) {
  MetricsRegistry metrics;
  ContentionRegistry contention(&metrics);
  // Manufacture two sites with known wait totals via direct records.
  contention.Site("cold")->CountAcquisition();
  contention.Site("hot")->CountAcquisition();
  contention.Site("hot")->RecordWait(5'000'000);
  contention.Site("cold")->RecordWait(1'000);

  std::string json = contention.ContentionJson();
  ASSERT_TRUE(ValidateJson(json).ok()) << json;
  size_t hot = json.find("\"hot\"");
  size_t cold = json.find("\"cold\"");
  ASSERT_NE(hot, std::string::npos);
  ASSERT_NE(cold, std::string::npos);
  EXPECT_LT(hot, cold);  // worst wait share first
  EXPECT_NE(json.find("\"armed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"wait_share\""), std::string::npos);
}

// ---- ChronoServer e2e ---------------------------------------------------

std::string HttpGet(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(ChronoServerContention, EndToEndScrapeShowsRetrofittedSites) {
  db::Database db;
  ASSERT_TRUE(db.ExecuteText("CREATE TABLE t (id INT, v TEXT)").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db.ExecuteText("INSERT INTO t (id, v) VALUES (" +
                               std::to_string(i) + ", 'v')")
                    .ok());
  }
  runtime::ServerConfig config;
  config.workers = 4;
  runtime::ChronoServer server(&db, config);

  StatsServer stats(server.registry(), server.traces());
  stats.SetContentionCallback(
      [&server] { return server.contention()->ContentionJson(); });
  ASSERT_TRUE(stats.Start(0).ok());

  // Concurrent traffic exercises the cache stripes and the db rwlock.
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&server, c] {
      for (int i = 0; i < 50; ++i) {
        server.Submit(c, "SELECT v FROM t WHERE id = " +
                             std::to_string(i % 20))
            .get();
      }
    });
  }
  for (std::thread& t : clients) t.join();

  std::string response = HttpGet(stats.port(), "/contention");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  std::string json = Body(response);
  ASSERT_TRUE(ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"cache.shard\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"server.db.read\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"pool.queue\""), std::string::npos) << json;

  // lock_telemetry defaults on, so the retrofit sites saw traffic.
  EXPECT_GT(server.contention()->Site("cache.shard")->acquisitions(), 0u);
  EXPECT_GT(server.contention()->Site("server.db.read")->acquisitions(), 0u);
  stats.Stop();
}

TEST(ChronoServerContention, LockTelemetryOffDisarmsEverySite) {
  db::Database db;
  ASSERT_TRUE(db.ExecuteText("CREATE TABLE t (id INT, v TEXT)").ok());
  ASSERT_TRUE(db.ExecuteText("INSERT INTO t (id, v) VALUES (1, 'v')").ok());
  runtime::ServerConfig config;
  config.workers = 2;
  config.lock_telemetry = false;
  runtime::ChronoServer server(&db, config);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(server.Submit(1, "SELECT v FROM t WHERE id = 1").get().ok());
  }
  EXPECT_FALSE(server.contention()->armed());
  EXPECT_EQ(server.contention()->Site("cache.shard")->acquisitions(), 0u);
  EXPECT_EQ(server.contention()->Site("server.db.read")->acquisitions(), 0u);
}

}  // namespace
}  // namespace chrono::obs
