// Overload-control tests (DESIGN.md §17): lane-split thread pool with
// strict demand priority, expiry-at-dequeue rejection, deterministic
// shutdown drain, the brownout ladder's hysteresis state machine, and the
// server-level expired-in-queue rejection path. Every transition here is
// deterministic — the brownout controller is driven sample-by-sample with
// no real clock, and pool ordering tests pin the single worker on a latch
// before releasing it. The CI ASan/TSan jobs run this file.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "runtime/brownout.h"
#include "runtime/server.h"
#include "runtime/thread_pool.h"

namespace chrono::runtime {
namespace {

using Lane = ThreadPool::Lane;
using Level = BrownoutController::Level;

/// Spins (bounded) until `pred` holds.
template <typename Pred>
bool WaitUntil(Pred pred, int timeout_ms = 5000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

/// Parks the pool's single worker until Release() — everything submitted
/// while parked sits in the lanes, so dequeue order is observable.
class WorkerLatch {
 public:
  void Park(ThreadPool* pool) {
    ASSERT_TRUE(pool->Submit([this] { future_.wait(); }));
  }
  void Release() { promise_.set_value(); }

 private:
  std::promise<void> promise_;
  std::shared_future<void> future_{promise_.get_future().share()};
};

// ---- Expiry at dequeue ---------------------------------------------------

TEST(ThreadPoolOverload, ExpiredInQueueRunsExpiredFnNotTask) {
  ThreadPool pool(1, 64);
  WorkerLatch latch;
  latch.Park(&pool);

  std::atomic<bool> ran{false}, expired{false};
  // Deadline already in the past when the worker eventually dequeues it.
  ASSERT_TRUE(pool.Submit([&] { ran = true; },
                          std::chrono::steady_clock::now() -
                              std::chrono::milliseconds(1),
                          [&] { expired = true; }));
  latch.Release();
  pool.Shutdown();
  EXPECT_FALSE(ran.load());
  EXPECT_TRUE(expired.load());
  EXPECT_EQ(pool.tasks_expired(), 1u);
}

TEST(ThreadPoolOverload, FutureDeadlineRunsTheTask) {
  ThreadPool pool(1, 64);
  std::atomic<bool> ran{false}, expired{false};
  ASSERT_TRUE(pool.Submit([&] { ran = true; },
                          std::chrono::steady_clock::now() +
                              std::chrono::minutes(10),
                          [&] { expired = true; }));
  pool.Shutdown();
  EXPECT_TRUE(ran.load());
  EXPECT_FALSE(expired.load());
  EXPECT_EQ(pool.tasks_expired(), 0u);
}

// ---- Strict demand priority ----------------------------------------------

TEST(ThreadPoolOverload, DemandRunsBeforeQueuedPrefetch) {
  ThreadPool pool(1, 64, /*prefetch_capacity=*/64);
  WorkerLatch latch;
  latch.Park(&pool);

  // Prefetch enqueued FIRST — under the old single-queue headroom
  // heuristic it would run first; with lanes, later demand overtakes it.
  std::vector<std::string> order;
  std::mutex order_mutex;
  auto record = [&](std::string tag) {
    return [&, tag = std::move(tag)] {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(tag);
    };
  };
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pool.TrySubmit(Lane::kPrefetch, record("prefetch")));
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pool.Submit(record("demand")));
  }
  latch.Release();
  // Wait for the full drain before Shutdown — Shutdown would discard any
  // prefetch still queued (that determinism is ShutdownDrains...'s test).
  ASSERT_TRUE(WaitUntil([&] { return pool.tasks_executed() >= 7; }));
  pool.Shutdown();

  ASSERT_EQ(order.size(), 6u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(order[i], "demand") << i;
  for (size_t i = 3; i < 6; ++i) EXPECT_EQ(order[i], "prefetch") << i;
}

TEST(ThreadPoolOverload, PrefetchLaneFullShedsWithoutBlocking) {
  ThreadPool pool(1, 64, /*prefetch_capacity=*/2);
  WorkerLatch latch;
  latch.Park(&pool);

  EXPECT_TRUE(pool.TrySubmit(Lane::kPrefetch, [] {}));
  EXPECT_TRUE(pool.TrySubmit(Lane::kPrefetch, [] {}));
  EXPECT_FALSE(pool.TrySubmit(Lane::kPrefetch, [] {}));  // lane full: shed
  EXPECT_EQ(pool.tasks_shed(), 1u);
  EXPECT_EQ(pool.lane_depth(Lane::kPrefetch), 2u);
  latch.Release();
  pool.Shutdown();
}

// ---- Deterministic shutdown drain ----------------------------------------

TEST(ThreadPoolOverload, ShutdownDrainsDemandAndDiscardsPrefetch) {
  ThreadPool pool(1, 64, /*prefetch_capacity=*/64);
  WorkerLatch latch;
  latch.Park(&pool);

  std::atomic<int> demand_ran{0}, expired_ran{0}, prefetch_ran{0};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.Submit([&] { ++demand_ran; }));
  }
  // Expired demand work still gets its completion during the drain — via
  // expired_fn, never silently dropped.
  ASSERT_TRUE(pool.Submit([&] { ++demand_ran; },
                          std::chrono::steady_clock::now() -
                              std::chrono::milliseconds(1),
                          [&] { ++expired_ran; }));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pool.TrySubmit(Lane::kPrefetch, [&] { ++prefetch_ran; }));
  }

  // Shutdown must drain every queued demand completion even though the
  // worker is still parked when it begins. Only release the worker once
  // Shutdown has actually started (it discards queued prefetch under the
  // lock), or the worker could legitimately drain the prefetch lane first.
  std::thread shutter([&] { pool.Shutdown(); });
  ASSERT_TRUE(WaitUntil([&] { return pool.shutting_down(); }));
  latch.Release();
  shutter.join();

  EXPECT_EQ(demand_ran.load(), 4);
  EXPECT_EQ(expired_ran.load(), 1);
  EXPECT_EQ(prefetch_ran.load(), 0);   // discarded, not run
  EXPECT_GE(pool.tasks_shed(), 3u);    // ... and counted
  EXPECT_FALSE(pool.Submit([] {}));    // rejected after shutdown
  EXPECT_TRUE(pool.shutting_down());
}

// ---- Brownout ladder state machine ---------------------------------------

BrownoutController::Options LadderOptions() {
  BrownoutController::Options options;
  options.queue_target_us = 1000;
  options.up_samples = 2;
  options.down_samples = 3;
  options.clear_ratio = 0.5;
  return options;
}

TEST(Brownout, DisabledControllerStaysNormal) {
  BrownoutController off(BrownoutController::Options{});
  EXPECT_FALSE(off.enabled());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(off.OnSample(1'000'000), Level::kNormal);
  }
}

TEST(Brownout, StepsUpOnlyAfterConsecutiveOverTargetSamples) {
  BrownoutController ctl(LadderOptions());
  EXPECT_EQ(ctl.OnSample(2000), Level::kNormal);        // over #1
  EXPECT_EQ(ctl.OnSample(400), Level::kNormal);         // clear: streak reset
  EXPECT_EQ(ctl.OnSample(2000), Level::kNormal);        // over #1 again
  EXPECT_EQ(ctl.OnSample(2000), Level::kShedPrefetch);  // over #2: step
  // Each further step needs its own consecutive streak.
  EXPECT_EQ(ctl.OnSample(2000), Level::kShedPrefetch);
  EXPECT_EQ(ctl.OnSample(2000), Level::kShedPipeline);
  EXPECT_EQ(ctl.OnSample(2000), Level::kShedPipeline);
  EXPECT_EQ(ctl.OnSample(2000), Level::kRejectQuery);
  // Ladder is capped at the top.
  EXPECT_EQ(ctl.OnSample(9000), Level::kRejectQuery);
  EXPECT_EQ(ctl.OnSample(9000), Level::kRejectQuery);
}

TEST(Brownout, HoldBandNeitherStepsUpNorDown) {
  BrownoutController ctl(LadderOptions());
  ctl.OnSample(2000);
  ASSERT_EQ(ctl.OnSample(2000), Level::kShedPrefetch);
  // In-band samples (>= clear_ratio*target, <= target) hold the level
  // forever — hysteresis damping.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(ctl.OnSample(700), Level::kShedPrefetch) << i;
  }
}

TEST(Brownout, WalksBackDownAfterConsecutiveClearSamples) {
  BrownoutController ctl(LadderOptions());
  for (int i = 0; i < 4; ++i) ctl.OnSample(5000);
  ASSERT_EQ(ctl.level(), Level::kShedPipeline);
  EXPECT_EQ(ctl.OnSample(100), Level::kShedPipeline);  // clear #1
  EXPECT_EQ(ctl.OnSample(100), Level::kShedPipeline);  // clear #2
  EXPECT_EQ(ctl.OnSample(100), Level::kShedPrefetch);  // clear #3: step down
  // An in-band blip resets the clear streak.
  EXPECT_EQ(ctl.OnSample(100), Level::kShedPrefetch);
  EXPECT_EQ(ctl.OnSample(700), Level::kShedPrefetch);
  EXPECT_EQ(ctl.OnSample(100), Level::kShedPrefetch);
  EXPECT_EQ(ctl.OnSample(100), Level::kShedPrefetch);
  EXPECT_EQ(ctl.OnSample(100), Level::kNormal);
}

TEST(Brownout, TransitionListenerSeesEveryStep) {
  BrownoutController ctl(LadderOptions());
  struct Step {
    Level to, from;
    uint64_t p99;
  };
  std::vector<Step> steps;
  ctl.SetTransitionListener([&](Level to, Level from, uint64_t p99) {
    steps.push_back({to, from, p99});
  });
  for (int i = 0; i < 4; ++i) ctl.OnSample(3000);
  for (int i = 0; i < 6; ++i) ctl.OnSample(0);
  ASSERT_EQ(steps.size(), 4u);
  EXPECT_EQ(steps[0].to, Level::kShedPrefetch);
  EXPECT_EQ(steps[0].from, Level::kNormal);
  EXPECT_EQ(steps[0].p99, 3000u);
  EXPECT_EQ(steps[1].to, Level::kShedPipeline);
  EXPECT_EQ(steps[2].to, Level::kShedPrefetch);
  EXPECT_EQ(steps[2].from, Level::kShedPipeline);
  EXPECT_EQ(steps[3].to, Level::kNormal);
}

TEST(Brownout, RetryAfterScalesWithLevelAndClamps) {
  BrownoutController::Options options = LadderOptions();
  options.queue_target_us = 100'000;  // 100 ms target
  BrownoutController ctl(options);
  EXPECT_EQ(ctl.RetryAfterMs(), 100u);  // level 0: target itself
  ctl.OnSample(500'000);
  ctl.OnSample(500'000);
  EXPECT_EQ(ctl.RetryAfterMs(), 200u);  // level 1: doubled
  BrownoutController::Options tiny = LadderOptions();
  tiny.queue_target_us = 1;  // sub-ms target clamps to the 10 ms floor
  EXPECT_EQ(BrownoutController(tiny).RetryAfterMs(), 10u);
}

TEST(Brownout, WindowedPercentileIgnoresHistoryBeforeTheWindow) {
  obs::Histogram hist;
  for (int i = 0; i < 1000; ++i) hist.Record(10);  // old, fast samples
  obs::HistogramSnapshot prev = hist.Snapshot();
  for (int i = 0; i < 100; ++i) hist.Record(100'000);  // the slow window
  obs::HistogramSnapshot cur = hist.Snapshot();
  // Cumulative p99 would still be dominated by the 1000 old samples; the
  // windowed p99 must see only the slow ones.
  uint64_t p99 = WindowedPercentile(prev, cur, 0.99);
  EXPECT_GT(p99, 50'000u);
  // Empty window reads as fully clear.
  EXPECT_EQ(WindowedPercentile(cur, cur, 0.99), 0u);
}

// ---- Server-level expired-in-queue rejection ------------------------------

class OverloadServerTest : public ::testing::Test {
 protected:
  OverloadServerTest() {
    auto r = db_.ExecuteText("CREATE TABLE t (id INT, v TEXT)");
    EXPECT_TRUE(r.ok());
    for (int i = 0; i < 10; ++i) {
      auto ins = db_.ExecuteText("INSERT INTO t (id, v) VALUES (" +
                                 std::to_string(i) + ", 'x')");
      EXPECT_TRUE(ins.ok());
    }
  }

  db::Database db_;
  obs::MetricsRegistry registry_;
};

TEST_F(OverloadServerTest, ExpiredWhileQueuedIsRejectedNotExecuted) {
  ServerConfig config;
  config.workers = 1;
  config.registry = &registry_;
  config.db_latency_us = 20'000;  // each executed request holds the worker
  ChronoServer server(&db_, config);

  // Head-of-line requests monopolize the single worker long enough that a
  // 1 ms deadline on the tail request expires while it waits in queue.
  constexpr int kBlockers = 4;
  std::vector<std::promise<Status>> done(kBlockers + 1);
  for (int i = 0; i < kBlockers; ++i) {
    server.SubmitAsync(/*client=*/1, "SELECT v FROM t WHERE id = 1",
                       /*security_group=*/0,
                       [&done, i](Result<runtime::SharedResult> result) {
                         done[i].set_value(result.status());
                       });
  }
  ChronoServer::WireTiming timing;
  timing.decode_start_us = server.NowMicros();
  timing.dispatch_us = timing.decode_start_us;
  timing.deadline_us = timing.decode_start_us + 1000;  // 1 ms budget
  server.SubmitAsync(
      /*client=*/1, "SELECT v FROM t WHERE id = 2", /*security_group=*/0,
      timing,
      [&done](Result<runtime::SharedResult> result,
              std::shared_ptr<obs::RequestTrace>) {
        done[kBlockers].set_value(result.status());
      });

  for (int i = 0; i < kBlockers; ++i) {
    EXPECT_TRUE(done[i].get_future().get().ok());
  }
  Status rejected = done[kBlockers].get_future().get();
  EXPECT_EQ(rejected.code(), Status::Code::kDeadlineExceeded);
  EXPECT_TRUE(ChronoServer::IsExpiredInQueue(rejected));

  ServerMetrics metrics = server.metrics();
  EXPECT_EQ(metrics.deadline_expired, 1u);
  EXPECT_EQ(server.pool().tasks_expired(), 1u);
  server.Shutdown();
}

TEST_F(OverloadServerTest, GenerousDeadlineExecutesNormally) {
  ServerConfig config;
  config.workers = 2;
  config.registry = &registry_;
  ChronoServer server(&db_, config);

  ChronoServer::WireTiming timing;
  timing.decode_start_us = server.NowMicros();
  timing.dispatch_us = timing.decode_start_us;
  timing.deadline_us = timing.decode_start_us + 10'000'000;  // 10 s
  std::promise<Status> done;
  server.SubmitAsync(
      /*client=*/1, "SELECT v FROM t WHERE id = 3", /*security_group=*/0,
      timing,
      [&done](Result<runtime::SharedResult> result,
              std::shared_ptr<obs::RequestTrace>) {
        done.set_value(result.status());
      });
  EXPECT_TRUE(done.get_future().get().ok());
  EXPECT_EQ(server.metrics().deadline_expired, 0u);
  server.Shutdown();
}

TEST_F(OverloadServerTest, BrownoutTransitionsAreJournaled) {
  ServerConfig config;
  config.workers = 1;
  config.registry = &registry_;
  config.queue_target_us = 1;        // any queue wait is over target
  config.brownout_sample_ms = 5;     // fast sampler for the test
  config.brownout_up_samples = 1;
  config.db_latency_us = 5'000;
  ChronoServer server(&db_, config);

  std::atomic<uint64_t> transitions{0};
  class CountSink : public obs::JournalSink {
   public:
    explicit CountSink(std::atomic<uint64_t>* transitions)
        : transitions_(transitions) {}
    void OnEvents(const obs::JournalEvent* events, size_t count) override {
      for (size_t i = 0; i < count; ++i) {
        if (events[i].type == obs::JournalEventType::kBrownoutTransition) {
          transitions_->fetch_add(1);
        }
      }
    }

   private:
    std::atomic<uint64_t>* transitions_;
  } sink(&transitions);
  ASSERT_NE(server.journal(), nullptr);
  server.journal()->AddSink(&sink);

  // Enough queued work that the sampler observes nonzero queue waits.
  constexpr int kBurst = 32;
  std::vector<std::future<Result<SharedResult>>> results;
  for (int i = 0; i < kBurst; ++i) {
    results.push_back(
        server.Submit(1, "SELECT v FROM t WHERE id = " +
                             std::to_string(i % 10)));
  }
  for (auto& r : results) (void)r.get();
  // The sampler needs a couple of windows to observe and step.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(5);
  while (server.brownout_level() == Level::kNormal &&
         std::chrono::steady_clock::now() < deadline) {
    (void)server.Submit(1, "SELECT v FROM t WHERE id = 1").get();
  }
  EXPECT_NE(server.brownout_level(), Level::kNormal);
  server.Shutdown();
  server.journal()->Stop();
  EXPECT_GT(transitions.load(), 0u);
}

}  // namespace
}  // namespace chrono::runtime
