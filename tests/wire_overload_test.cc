// Wire-level overload-control tests (DESIGN.md §17): deadline propagation
// over the protocol (kFlagDeadline in, kFlagExpired back out), brownout
// admission rejection with a Retry-After hint, slowloris reaping of
// stalled handshakes and dribbled frames, and v1-client compatibility —
// an old client exchanging byte-identical v1 frames with a v2 server.
// The CI ASan and TSan jobs run this file.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "net/socket_util.h"
#include "obs/metrics.h"
#include "runtime/server.h"
#include "wire/protocol.h"
#include "wire/wire_client.h"
#include "wire/wire_server.h"

namespace chrono::wire {
namespace {

class WireOverloadTest : public ::testing::Test {
 protected:
  WireOverloadTest() {
    auto setup = [&](const std::string& sql) {
      auto r = db_.ExecuteText(sql);
      EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    };
    setup("CREATE TABLE t (id INT, v TEXT)");
    for (int i = 0; i < 50; ++i) {
      setup("INSERT INTO t (id, v) VALUES (" + std::to_string(i) + ", 'v" +
            std::to_string(i) + "')");
    }
  }

  void StartNode(runtime::ServerConfig config,
                 WireServer::Options wire_options = {}) {
    config.registry = &registry_;
    server_ = std::make_unique<runtime::ChronoServer>(&db_, config);
    wire_options.port = 0;
    wire_ = std::make_unique<WireServer>(server_.get(), wire_options);
    ASSERT_TRUE(wire_->Start().ok());
    ASSERT_GT(wire_->port(), 0);
  }

  void StopNode() {
    if (wire_) wire_->Stop();
    if (server_) server_->Shutdown();
  }

  ~WireOverloadTest() override { StopNode(); }

  template <typename Pred>
  bool WaitFor(Pred pred, int timeout_ms = 5000) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
  }

  /// Blocks until the peer closes `fd` (recv returns 0 or the connection
  /// resets). Data received before EOF is discarded.
  static bool WaitForEof(int fd, int timeout_ms) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    char buf[256];
    while (std::chrono::steady_clock::now() < deadline) {
      if (net::PollReadable(fd, 50) <= 0) continue;
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return true;
    }
    return false;
  }

  /// Reads exactly one frame from a raw socket (header, then payload).
  static Result<Frame> ReadRawFrame(int fd) {
    std::string bytes(kHeaderBytes, '\0');
    Status s = net::RecvAll(fd, bytes.data(), bytes.size());
    if (!s.ok()) return s;
    uint32_t payload_len = 0;
    std::memcpy(&payload_len, bytes.data() + 16, sizeof(payload_len));
    size_t header = bytes.size();
    bytes.resize(header + payload_len);
    if (payload_len > 0) {
      s = net::RecvAll(fd, bytes.data() + header, payload_len);
      if (!s.ok()) return s;
    }
    Frame frame;
    size_t consumed = 0;
    Status error;
    if (DecodeFrame(bytes.data(), bytes.size(), 0, &frame, &consumed,
                    &error) != DecodeStatus::kFrame) {
      return error.ok() ? Status::Internal("short frame") : error;
    }
    return frame;
  }

  db::Database db_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<runtime::ChronoServer> server_;
  std::unique_ptr<WireServer> wire_;
};

// ---- Deadline propagation ------------------------------------------------

TEST_F(WireOverloadTest, ExpiredInQueueReturnsErrorWithExpiredFlag) {
  runtime::ServerConfig config;
  config.workers = 1;
  config.db_latency_us = 20'000;  // each miss holds the single worker
  StartNode(config);

  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", wire_->port(), 1).ok());
  ASSERT_EQ(client.negotiated_version(), kProtocolVersion);

  // Distinct head-of-line queries monopolize the worker; the tail query's
  // 1 ms deadline expires while it waits in the demand lane.
  constexpr int kBlockers = 4;
  std::map<uint64_t, bool> deadline_of;  // request id -> had a deadline
  for (int i = 0; i < kBlockers; ++i) {
    uint64_t id = 0;
    ASSERT_TRUE(client
                    .SendQuery("SELECT v FROM t WHERE id = " +
                                   std::to_string(i),
                               &id)
                    .ok());
    deadline_of[id] = false;
  }
  uint64_t doomed_id = 0;
  ASSERT_TRUE(client
                  .SendQuery("SELECT v FROM t WHERE id = 40", &doomed_id,
                             /*flags=*/0, /*deadline_ms=*/1)
                  .ok());
  deadline_of[doomed_id] = true;

  int ok_count = 0, expired_count = 0;
  for (size_t i = 0; i < deadline_of.size(); ++i) {
    Result<WireClient::Response> response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (deadline_of[response->request_id]) {
      // The doomed request comes back kDeadlineExceeded with kFlagExpired:
      // it never executed.
      EXPECT_FALSE(response->result.ok());
      EXPECT_EQ(response->result.status().code(),
                Status::Code::kDeadlineExceeded);
      EXPECT_TRUE(response->expired);
      ++expired_count;
    } else {
      EXPECT_TRUE(response->result.ok())
          << response->result.status().ToString();
      ++ok_count;
    }
  }
  EXPECT_EQ(ok_count, kBlockers);
  EXPECT_EQ(expired_count, 1);
  client.Close();

  // The rejection is visible server-side too: the pool expired it at
  // dequeue and the §17 metric counted it.
  EXPECT_EQ(server_->pool().tasks_expired(), 1u);
  EXPECT_EQ(server_->metrics().deadline_expired, 1u);
}

TEST_F(WireOverloadTest, GenerousWireDeadlineExecutesNormally) {
  runtime::ServerConfig config;
  config.workers = 2;
  StartNode(config);
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", wire_->port(), 1).ok());
  Result<sql::ResultSet> rows = client.Query("SELECT v FROM t WHERE id = 1",
                                             /*timeout_ms=*/10'000,
                                             /*flags=*/0,
                                             /*deadline_ms=*/30'000);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(server_->metrics().deadline_expired, 0u);
}

// ---- Brownout admission --------------------------------------------------

TEST_F(WireOverloadTest, BrownoutRejectsQuerysWithRetryAfterHint) {
  runtime::ServerConfig config;
  config.workers = 1;
  config.db_latency_us = 10'000;
  // Any observed queue wait is over target; one bad sample per step walks
  // the ladder to kRejectQuery within a few sampler windows.
  config.queue_target_us = 1;
  config.brownout_sample_ms = 2;
  config.brownout_up_samples = 1;
  StartNode(config);

  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", wire_->port(), 1).ok());

  uint32_t retry_after = 0;
  bool rejected = false;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(10);
  int round = 0;
  while (!rejected && std::chrono::steady_clock::now() < deadline) {
    constexpr int kBurst = 16;
    int sent = 0;
    for (int i = 0; i < kBurst; ++i) {
      uint64_t id = 0;
      if (!client
               .SendQuery("SELECT v FROM t WHERE id = " +
                              std::to_string((round * kBurst + i) % 50),
                          &id)
               .ok()) {
        break;
      }
      ++sent;
    }
    ASSERT_GT(sent, 0);
    for (int i = 0; i < sent; ++i) {
      Result<WireClient::Response> response = client.ReadResponse();
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      if (!response->result.ok() && response->retry_after_ms > 0) {
        rejected = true;
        retry_after = response->retry_after_ms;
      }
    }
    ++round;
  }
  ASSERT_TRUE(rejected) << "brownout never rejected a Query";
  EXPECT_GE(retry_after, 10u);    // RetryAfterMs clamps to [10ms, 5s]
  EXPECT_LE(retry_after, 5000u);
  // The connection survives the rejection — brownout is per-request.
  EXPECT_TRUE(client.connected());
  EXPECT_TRUE(WaitFor([&] { return wire_->stats().overload_rejects > 0; }));
  client.Close();
}

// ---- Slowloris reaping ---------------------------------------------------

TEST_F(WireOverloadTest, StalledHandshakeIsReaped) {
  runtime::ServerConfig config;
  config.workers = 2;
  WireServer::Options wire_options;
  wire_options.handshake_timeout_ms = 100;
  wire_options.idle_timeout_ms = 200;  // epoll tick = idle/4 = 50 ms
  StartNode(config, wire_options);

  // A well-behaved control connection must survive the whole test.
  WireClient good;
  ASSERT_TRUE(good.Connect("127.0.0.1", wire_->port(), 1).ok());

  // The attacker connects and never sends Hello.
  Result<int> fd = net::ConnectTcp("127.0.0.1", wire_->port(), 1000);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  EXPECT_TRUE(WaitForEof(*fd, 5000)) << "stalled handshake never reaped";
  ::close(*fd);

  EXPECT_TRUE(good.Ping().ok());  // periodic traffic keeps it alive
  good.Close();
}

TEST_F(WireOverloadTest, DribbledFrameIsReapedDespiteActivity) {
  runtime::ServerConfig config;
  config.workers = 2;
  WireServer::Options wire_options;
  wire_options.read_timeout_ms = 150;
  wire_options.idle_timeout_ms = 10'000;  // idle alone would never fire
  StartNode(config, wire_options);

  WireClient slow;
  ASSERT_TRUE(slow.Connect("127.0.0.1", wire_->port(), 2).ok());

  // Dribble a valid Query frame one byte at a time, slower than it could
  // ever complete: each byte refreshes last_activity_us, but the
  // partial-frame anchor (armed at the first incomplete byte) does not
  // move, so the read deadline still fires.
  std::string frame = EncodeQuery(9, "SELECT v FROM t WHERE id = 1");
  bool closed = false;
  for (size_t i = 0; i < frame.size() && !closed; ++i) {
    if (!slow.SendRaw(frame.data() + i, 1).ok()) {
      closed = true;  // server already reaped us mid-dribble
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    if (net::PollReadable(slow.fd(), 0) > 0) {
      char buf[64];
      if (::recv(slow.fd(), buf, sizeof(buf), 0) <= 0) closed = true;
    }
  }
  if (!closed) closed = WaitForEof(slow.fd(), 5000);
  EXPECT_TRUE(closed) << "dribbled frame never reaped";
}

// ---- v1 client compatibility ---------------------------------------------

TEST_F(WireOverloadTest, V1ClientSpeaksV1EndToEnd) {
  runtime::ServerConfig config;
  config.workers = 2;
  StartNode(config);

  Result<int> fd = net::ConnectTcp("127.0.0.1", wire_->port(), 1000);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();

  // A v1 Hello advertises version 1; the server must echo the Hello
  // stamped min(1, 2) = 1 and speak v1 for the rest of the connection.
  HelloBody hello;
  hello.client_id = 77;
  std::string frame = EncodeHello(0, hello, /*version=*/1);
  ASSERT_TRUE(net::SendAll(*fd, frame.data(), frame.size()));
  Result<Frame> ack = ReadRawFrame(*fd);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->header.type, MessageType::kHello);
  EXPECT_EQ(ack->header.version, 1);

  // A v1 Query (no deadline field possible) gets a v1 Result back.
  frame = EncodeQuery(5, "SELECT v FROM t WHERE id = 3", 0, 0, /*version=*/1);
  ASSERT_TRUE(net::SendAll(*fd, frame.data(), frame.size()));
  Result<Frame> reply = ReadRawFrame(*fd);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->header.version, 1);
  EXPECT_EQ(reply->header.request_id, 5u);
  ASSERT_EQ(reply->header.type, MessageType::kResult);
  Result<sql::ResultSet> rows = DecodeResult(reply->payload);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  auto direct = db_.ExecuteText("SELECT v FROM t WHERE id = 3");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*rows, direct->result);

  // Errors to a v1 peer are v1 frames with no v2 flag bits.
  frame = EncodeQuery(6, "SELECT FROM WHERE !!", 0, 0, /*version=*/1);
  ASSERT_TRUE(net::SendAll(*fd, frame.data(), frame.size()));
  Result<Frame> err = ReadRawFrame(*fd);
  ASSERT_TRUE(err.ok()) << err.status().ToString();
  EXPECT_EQ(err->header.version, 1);
  ASSERT_EQ(err->header.type, MessageType::kError);
  EXPECT_EQ(err->header.flags & (kFlagRetryAfter | kFlagExpired), 0);
  ErrorBody body;
  EXPECT_TRUE(DecodeError(err->payload, err->header.flags, &body).ok());
  EXPECT_FALSE(body.status.ok());

  frame = EncodeGoodbye(0, /*version=*/1);
  ASSERT_TRUE(net::SendAll(*fd, frame.data(), frame.size()));
  ::close(*fd);
}

TEST_F(WireOverloadTest, V2ClientNegotiatesV2) {
  runtime::ServerConfig config;
  config.workers = 2;
  StartNode(config);
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", wire_->port(), 1).ok());
  EXPECT_EQ(client.negotiated_version(), kProtocolVersion);
  client.Close();
}

}  // namespace
}  // namespace chrono::wire
