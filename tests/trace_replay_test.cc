// Trace-replay workload: parsing the trace format, setup execution, and a
// full run through the middleware where ChronoCache learns the recorded
// pattern — plus CREATE TABLE DDL support, which traces rely on.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "db/database.h"
#include "harness/experiment.h"
#include "workloads/trace_replay.h"

namespace chrono::workloads {
namespace {

constexpr char kTrace[] = R"(
# A miniature Fig. 1 pattern as a captured trace.
-- SETUP
CREATE TABLE watch_item (wi_wl_id bigint, wi_s_symb text);
CREATE TABLE security (s_symb text, s_num_out bigint);
INSERT INTO watch_item VALUES (1, 'AAA'), (1, 'BBB'), (2, 'CCC');
INSERT INTO security VALUES ('AAA', 100), ('BBB', 200), ('CCC', 300);

-- TXN
SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 1;
SELECT s_num_out FROM security WHERE s_symb = 'AAA';
SELECT s_num_out FROM security WHERE s_symb = 'BBB';

-- TXN
SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 2;
SELECT s_num_out FROM security WHERE s_symb = 'CCC';
)";

TEST(CreateTable, DdlExecutes) {
  db::Database db;
  auto outcome =
      db.ExecuteText("CREATE TABLE t (id bigint, name varchar(32), x double)");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_NE(db.catalog()->FindTable("t"), nullptr);
  EXPECT_EQ(db.catalog()->FindTable("t")->columns().size(), 3u);
  EXPECT_TRUE(db.ExecuteText("INSERT INTO t VALUES (1, 'a', 2.5)").ok());
  auto rs = db.ExecuteText("SELECT name FROM t WHERE id = 1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->result.At(0, "name"), sql::Value::String("a"));
}

TEST(CreateTable, DuplicateFails) {
  db::Database db;
  ASSERT_TRUE(db.ExecuteText("CREATE TABLE t (id bigint)").ok());
  EXPECT_FALSE(db.ExecuteText("CREATE TABLE t (id bigint)").ok());
}

TEST(CreateTable, UnknownTypeRejected) {
  db::Database db;
  EXPECT_FALSE(db.ExecuteText("CREATE TABLE t (id blob)").ok());
}

TEST(TraceReplay, ParsesSections) {
  auto workload = TraceReplayWorkload::FromString(kTrace);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  EXPECT_EQ((*workload)->setup_statement_count(), 4u);
  EXPECT_EQ((*workload)->transaction_type_count(), 2u);
}

TEST(TraceReplay, RejectsEmptyTrace) {
  EXPECT_FALSE(TraceReplayWorkload::FromString("# nothing here\n").ok());
  EXPECT_FALSE(TraceReplayWorkload::FromString("-- SETUP\nSELECT 1;\n").ok());
}

TEST(TraceReplay, RejectsStatementsOutsideSections) {
  EXPECT_FALSE(TraceReplayWorkload::FromString("SELECT 1;\n-- TXN\nSELECT 2;\n")
                   .ok());
}

TEST(TraceReplay, PopulateRunsSetup) {
  auto workload = TraceReplayWorkload::FromString(kTrace);
  ASSERT_TRUE(workload.ok());
  db::Database db;
  (*workload)->Populate(&db);
  auto rs = db.ExecuteText("SELECT count(*) FROM security");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->result.row(0)[0], sql::Value::Int(3));
}

TEST(TraceReplay, TransactionsReplayVerbatim) {
  auto workload = TraceReplayWorkload::FromString(kTrace);
  ASSERT_TRUE(workload.ok());
  Rng rng(1);
  auto tx = (*workload)->NextTransaction(&rng);
  ASSERT_NE(tx, nullptr);
  auto first = tx->Next(nullptr);
  ASSERT_TRUE(first.has_value());
  EXPECT_NE(first->find("SELECT"), std::string::npos);
  int count = 1;
  while (tx->Next(nullptr).has_value()) ++count;
  EXPECT_GE(count, 2);
}

TEST(TraceReplay, FromFileRoundTrip) {
  std::string path = ::testing::TempDir() + "/chrono_trace_test.sql";
  {
    std::ofstream out(path);
    out << kTrace;
  }
  auto workload = TraceReplayWorkload::FromFile(path);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  EXPECT_EQ((*workload)->transaction_type_count(), 2u);
  std::remove(path.c_str());
}

TEST(TraceReplay, MissingFileFails) {
  EXPECT_FALSE(TraceReplayWorkload::FromFile("/nonexistent/trace.sql").ok());
}

TEST(TraceReplay, FullExperimentLearnsTracePattern) {
  harness::ExperimentConfig config;
  config.clients = 2;
  config.warmup = 5 * kMicrosPerSecond;
  config.duration = 15 * kMicrosPerSecond;
  config.middleware.mode = core::SystemMode::kChrono;
  auto make = [] {
    auto workload = TraceReplayWorkload::FromString(kTrace);
    EXPECT_TRUE(workload.ok());
    return std::move(*workload);
  };
  harness::ExperimentResult result = harness::RunExperiment(make, config);
  EXPECT_EQ(result.errors, 0u) << result.first_error;
  // The trace repeats exactly, so nearly everything ends up cached; the
  // point is that learning + combining work on replayed traffic too.
  EXPECT_GT(result.cache_hit_rate, 0.5);
  EXPECT_GT(result.queries_measured, 100u);
}

}  // namespace
}  // namespace chrono::workloads
