// Advanced executor behaviour: CTEs, lateral joins, the CTE-join pushdown
// rewrite, subqueries, hash joins — everything the query combiners rely on.

#include <gtest/gtest.h>

#include "db/database.h"

namespace chrono::db {
namespace {

using sql::ResultSet;
using sql::Value;

class AdvancedExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.catalog()
                    ->CreateTable("watch_item",
                                  {ColumnDef{"wi_wl_id", Value::Type::kInt},
                                   ColumnDef{"wi_s_symb", Value::Type::kString}})
                    .ok());
    ASSERT_TRUE(db_.catalog()
                    ->CreateTable("security",
                                  {ColumnDef{"s_symb", Value::Type::kString},
                                   ColumnDef{"s_num_out", Value::Type::kInt}})
                    .ok());
    Exec("INSERT INTO watch_item VALUES (1, 'AAA'), (1, 'BBB'), (2, 'CCC')");
    Exec("INSERT INTO security VALUES ('AAA', 100), ('BBB', 200), "
         "('CCC', 300), ('DDD', 400)");
  }

  ResultSet Exec(const std::string& sql) {
    auto outcome = db_.ExecuteText(sql);
    EXPECT_TRUE(outcome.ok()) << sql << " -> " << outcome.status().ToString();
    if (!outcome.ok()) return ResultSet();
    return outcome->result;
  }

  Database db_;
};

TEST_F(AdvancedExecutorTest, BasicCte) {
  ResultSet rs = Exec(
      "WITH w AS (SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 1) "
      "SELECT * FROM w");
  EXPECT_EQ(rs.row_count(), 2u);
}

TEST_F(AdvancedExecutorTest, CteReferencingEarlierCte) {
  ResultSet rs = Exec(
      "WITH a AS (SELECT wi_s_symb FROM watch_item), "
      "b AS (SELECT wi_s_symb FROM a WHERE wi_s_symb = 'AAA') "
      "SELECT * FROM b");
  EXPECT_EQ(rs.row_count(), 1u);
}

TEST_F(AdvancedExecutorTest, CteShadowsBaseTable) {
  ResultSet rs = Exec(
      "WITH security AS (SELECT wi_s_symb FROM watch_item) "
      "SELECT * FROM security");
  EXPECT_EQ(rs.row_count(), 3u);  // the CTE, not the 4-row base table
}

// The exact shape Algorithm 2 emits (Fig. 7): stripped-filter CTE joined
// back via the mapping condition.
TEST_F(AdvancedExecutorTest, CteJoinCombinedShape) {
  ResultSet rs = Exec(
      "WITH q1 AS (SELECT wi_s_symb AS q1c0, watch_item.__rowid AS q1ck0 "
      "FROM watch_item WHERE wi_wl_id = 1), "
      "q2 AS (SELECT s_num_out AS q2c0, s_symb AS q2jc0, security.__rowid AS "
      "q2ck0 FROM security) "
      "SELECT q1.q1c0, q1.q1ck0, q2.q2c0, q2.q2ck0 FROM q1 LEFT JOIN q2 ON "
      "q2.q2jc0 = q1.q1c0");
  ASSERT_EQ(rs.row_count(), 2u);
  EXPECT_EQ(rs.At(0, "q1c0"), Value::String("AAA"));
  EXPECT_EQ(rs.At(0, "q2c0"), Value::Int(100));
  EXPECT_EQ(rs.At(1, "q2c0"), Value::Int(200));
}

TEST_F(AdvancedExecutorTest, CteJoinPushdownScansFewRows) {
  // The pushdown rewrite must turn the stripped CTE into index probes:
  // rows scanned stays near the matched rows, nowhere near |security| x
  // |watch_item|.
  auto outcome = db_.ExecuteText(
      "WITH q1 AS (SELECT wi_s_symb AS c0 FROM watch_item WHERE wi_wl_id = "
      "1), q2 AS (SELECT s_num_out AS c1, s_symb AS jc0 FROM security) "
      "SELECT q1.c0, q2.c1 FROM q1 LEFT JOIN q2 ON q2.jc0 = q1.c0");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.row_count(), 2u);
  EXPECT_LT(outcome->stats.rows_scanned, 12u);
}

TEST_F(AdvancedExecutorTest, CteJoinLeftSemanticsUnderPushdown) {
  Exec("INSERT INTO watch_item VALUES (1, 'ZZZ')");  // no matching security
  ResultSet rs = Exec(
      "WITH q1 AS (SELECT wi_s_symb AS c0 FROM watch_item WHERE wi_wl_id = "
      "1), q2 AS (SELECT s_num_out AS c1, s_symb AS jc0 FROM security) "
      "SELECT q1.c0, q2.c1 FROM q1 LEFT JOIN q2 ON q2.jc0 = q1.c0");
  ASSERT_EQ(rs.row_count(), 3u);
  EXPECT_TRUE(rs.At(2, "c1").is_null());
}

TEST_F(AdvancedExecutorTest, CteWithFilterKeptUnderPushdown) {
  // Residual WHERE inside the CTE must still apply after the pushdown.
  ResultSet rs = Exec(
      "WITH q1 AS (SELECT wi_s_symb AS c0 FROM watch_item WHERE wi_wl_id = "
      "1), q2 AS (SELECT s_num_out AS c1, s_symb AS jc0 FROM security WHERE "
      "s_num_out > 150) "
      "SELECT q1.c0, q2.c1 FROM q1 LEFT JOIN q2 ON q2.jc0 = q1.c0");
  ASSERT_EQ(rs.row_count(), 2u);
  EXPECT_TRUE(rs.At(0, "c1").is_null());          // AAA filtered out
  EXPECT_EQ(rs.At(1, "c1"), Value::Int(200));     // BBB kept
}

TEST_F(AdvancedExecutorTest, MaterialisedCteStillWorksInFromPosition) {
  // A CTE as the first FROM entry cannot be pushed down; it materialises.
  ResultSet rs = Exec(
      "WITH q2 AS (SELECT s_symb, s_num_out FROM security) "
      "SELECT s_symb FROM q2 WHERE s_num_out = 300");
  ASSERT_EQ(rs.row_count(), 1u);
  EXPECT_EQ(rs.At(0, "s_symb"), Value::String("CCC"));
}

TEST_F(AdvancedExecutorTest, LateralCrossApply) {
  ResultSet rs = Exec(
      "SELECT w.wi_s_symb, s.n FROM watch_item AS w, LATERAL (SELECT "
      "s_num_out AS n FROM security WHERE s_symb = w.wi_s_symb) AS s "
      "WHERE w.wi_wl_id = 1");
  EXPECT_EQ(rs.row_count(), 2u);
}

TEST_F(AdvancedExecutorTest, LeftJoinLateralKeepsEmptyIterations) {
  Exec("INSERT INTO watch_item VALUES (3, 'NOPE')");
  ResultSet rs = Exec(
      "SELECT w.wi_s_symb, s.n FROM watch_item AS w LEFT JOIN LATERAL "
      "(SELECT s_num_out AS n FROM security WHERE s_symb = w.wi_s_symb) AS s "
      "ON TRUE WHERE w.wi_wl_id = 3");
  ASSERT_EQ(rs.row_count(), 1u);
  EXPECT_TRUE(rs.At(0, "n").is_null());
}

TEST_F(AdvancedExecutorTest, LateralWithAggregateAndRowNumber) {
  // The lateral-union combiner's per-iteration shape (§4.2).
  ResultSet rs = Exec(
      "SELECT w.wi_s_symb, s.m, s.rn FROM watch_item AS w LEFT JOIN LATERAL "
      "(SELECT max(s_num_out) AS m, row_number() OVER () AS rn FROM security "
      "WHERE s_symb = w.wi_s_symb) AS s ON TRUE WHERE w.wi_wl_id = 1");
  ASSERT_EQ(rs.row_count(), 2u);
  EXPECT_EQ(rs.At(0, "m"), Value::Int(100));
  EXPECT_EQ(rs.At(0, "rn"), Value::Int(1));
  EXPECT_EQ(rs.At(1, "m"), Value::Int(200));
  EXPECT_EQ(rs.At(1, "rn"), Value::Int(1));  // numbering restarts per row
}

TEST_F(AdvancedExecutorTest, LateralProbeUsesIndex) {
  for (int i = 0; i < 300; ++i) {
    Exec("INSERT INTO security VALUES ('S" + std::to_string(i) + "', 1)");
  }
  auto outcome = db_.ExecuteText(
      "SELECT w.wi_s_symb, s.n FROM watch_item AS w, LATERAL (SELECT "
      "s_num_out AS n FROM security WHERE s_symb = w.wi_s_symb) AS s "
      "WHERE w.wi_wl_id = 1");
  ASSERT_TRUE(outcome.ok());
  // Without correlated index probes this would scan 2 x 304 rows.
  EXPECT_LT(outcome->stats.rows_scanned, 40u);
}

TEST_F(AdvancedExecutorTest, SubqueryInFrom) {
  ResultSet rs = Exec(
      "SELECT d.sym FROM (SELECT wi_s_symb AS sym FROM watch_item WHERE "
      "wi_wl_id = 2) AS d");
  ASSERT_EQ(rs.row_count(), 1u);
  EXPECT_EQ(rs.At(0, "sym"), Value::String("CCC"));
}

TEST_F(AdvancedExecutorTest, HashJoinMatchesNestedLoopSemantics) {
  // Equi-join (hash path) and an equivalent non-equi formulation must
  // produce the same multiset of rows.
  ResultSet hash = Exec(
      "SELECT wi_s_symb, s_num_out FROM watch_item JOIN security ON "
      "wi_s_symb = s_symb");
  ResultSet nested = Exec(
      "SELECT wi_s_symb, s_num_out FROM watch_item JOIN security ON "
      "NOT (wi_s_symb <> s_symb)");
  EXPECT_EQ(hash, nested);
}

TEST_F(AdvancedExecutorTest, RowNumberWithGroupByNumbersGroups) {
  ResultSet rs = Exec(
      "SELECT wi_wl_id, count(*), row_number() OVER () AS rn FROM watch_item "
      "GROUP BY wi_wl_id");
  ASSERT_EQ(rs.row_count(), 2u);
  EXPECT_EQ(rs.At(0, "rn"), Value::Int(1));
  EXPECT_EQ(rs.At(1, "rn"), Value::Int(2));
}

TEST_F(AdvancedExecutorTest, OrderByOutputAliasOnAggregate) {
  ResultSet rs = Exec(
      "SELECT wi_wl_id AS wl, count(*) AS n FROM watch_item GROUP BY "
      "wi_wl_id ORDER BY n DESC");
  ASSERT_EQ(rs.row_count(), 2u);
  EXPECT_EQ(rs.At(0, "n"), Value::Int(2));
}

TEST_F(AdvancedExecutorTest, NestedCtesInsideSubquery) {
  ResultSet rs = Exec(
      "SELECT d.c FROM (WITH x AS (SELECT wi_s_symb FROM watch_item) "
      "SELECT count(*) AS c FROM x) AS d");
  ASSERT_EQ(rs.row_count(), 1u);
  EXPECT_EQ(rs.At(0, "c"), Value::Int(3));
}

TEST_F(AdvancedExecutorTest, EmptyDriverYieldsEmptyCombined) {
  ResultSet rs = Exec(
      "WITH q1 AS (SELECT wi_s_symb AS c0 FROM watch_item WHERE wi_wl_id = "
      "99), q2 AS (SELECT s_num_out AS c1, s_symb AS jc0 FROM security) "
      "SELECT q1.c0, q2.c1 FROM q1 LEFT JOIN q2 ON q2.jc0 = q1.c0");
  EXPECT_EQ(rs.row_count(), 0u);
  EXPECT_EQ(rs.column_count(), 2u);
}

}  // namespace
}  // namespace chrono::db
