#include <gtest/gtest.h>

#include "core/param_mapper.h"

namespace chrono::core {
namespace {

using sql::ResultSet;
using sql::Value;

ResultSet SymbolResult(std::vector<std::string> symbols) {
  ResultSet rs({"symb", "num"});
  int64_t n = 100;
  for (auto& s : symbols) {
    rs.AddRow({Value::String(std::move(s)), Value::Int(n++)});
  }
  return rs;
}

TEST(ParamMapper, DiscoversAndConfirmsMapping) {
  ParamMapper mapper(/*min_validations=*/2);
  mapper.ObserveResult(1, SymbolResult({"AAA", "BBB", "CCC"}));

  // First issue of Q2 with the row-0 symbol: candidate created (1 match).
  mapper.ObserveQuery(2, {Value::String("AAA")});
  EXPECT_TRUE(mapper.ConfirmedMappings(2).empty());

  // Second issue matches row 1: validated.
  mapper.ObserveQuery(2, {Value::String("BBB")});
  auto mappings = mapper.ConfirmedMappings(2);
  ASSERT_EQ(mappings.size(), 1u);
  EXPECT_EQ(mappings[0].src, 1u);
  EXPECT_EQ(mappings[0].src_column, "symb");
  EXPECT_EQ(mappings[0].dst_param, 0);
}

TEST(ParamMapper, LoopCursorAdvancesPerIssue) {
  ParamMapper mapper(2);
  mapper.ObserveResult(1, SymbolResult({"AAA", "BBB", "CCC"}));
  mapper.ObserveQuery(2, {Value::String("AAA")});
  mapper.ObserveQuery(2, {Value::String("BBB")});
  mapper.ObserveQuery(2, {Value::String("CCC")});
  auto mappings = mapper.ConfirmedMappings(2);
  ASSERT_EQ(mappings.size(), 1u);
  EXPECT_EQ(mapper.BlacklistedCount(2), 0);
}

TEST(ParamMapper, SpuriousMappingBlacklisted) {
  ParamMapper mapper(2);
  mapper.ObserveResult(1, SymbolResult({"AAA", "BBB"}));
  // Coincidental match on row 0, mismatch on row 1: blacklist forever.
  mapper.ObserveQuery(2, {Value::String("AAA")});
  mapper.ObserveQuery(2, {Value::String("ZZZ")});
  EXPECT_TRUE(mapper.ConfirmedMappings(2).empty());
  EXPECT_EQ(mapper.BlacklistedCount(2), 1);
  // Even if values match later, the blacklist is permanent (§2.1).
  mapper.ObserveResult(1, SymbolResult({"AAA", "BBB"}));
  mapper.ObserveQuery(2, {Value::String("AAA")});
  mapper.ObserveQuery(2, {Value::String("BBB")});
  EXPECT_TRUE(mapper.ConfirmedMappings(2).empty());
}

TEST(ParamMapper, FreshResultResetsCursor) {
  ParamMapper mapper(2);
  mapper.ObserveResult(1, SymbolResult({"AAA", "BBB"}));
  mapper.ObserveQuery(2, {Value::String("AAA")});
  // New invocation: fresh result, cursor restarts at row 0.
  mapper.ObserveResult(1, SymbolResult({"XXX", "YYY"}));
  mapper.ObserveQuery(2, {Value::String("XXX")});
  mapper.ObserveQuery(2, {Value::String("YYY")});
  ASSERT_EQ(mapper.ConfirmedMappings(2).size(), 1u);
}

TEST(ParamMapper, CursorPastEndIsNeutral) {
  ParamMapper mapper(2);
  mapper.ObserveResult(1, SymbolResult({"AAA"}));
  mapper.ObserveQuery(2, {Value::String("AAA")});
  // Issues beyond the result's length neither validate nor blacklist.
  mapper.ObserveQuery(2, {Value::String("QQQ")});
  mapper.ObserveQuery(2, {Value::String("RRR")});
  EXPECT_EQ(mapper.BlacklistedCount(2), 0);
}

TEST(ParamMapper, MultipleColumnsCreateMultipleCandidates) {
  ParamMapper mapper(2);
  ResultSet rs({"a", "b"});
  rs.AddRow({Value::Int(7), Value::Int(7)});  // both columns match
  rs.AddRow({Value::Int(8), Value::Int(9)});  // only column a matches
  mapper.ObserveResult(1, rs);
  mapper.ObserveQuery(2, {Value::Int(7)});
  mapper.ObserveQuery(2, {Value::Int(8)});
  auto mappings = mapper.ConfirmedMappings(2);
  ASSERT_EQ(mappings.size(), 1u);
  EXPECT_EQ(mappings[0].src_column, "a");
  EXPECT_EQ(mapper.BlacklistedCount(2), 1);  // column b blacklisted
}

TEST(ParamMapper, MultiParamQueries) {
  ParamMapper mapper(2);
  ResultSet rs({"id", "latest"});
  rs.AddRow({Value::Int(10), Value::Int(501)});
  mapper.ObserveResult(1, rs);
  mapper.ObserveQuery(2, {Value::Int(10), Value::Int(501)});
  mapper.ObserveResult(1, [&] {
    ResultSet r2({"id", "latest"});
    r2.AddRow({Value::Int(11), Value::Int(502)});
    return r2;
  }());
  mapper.ObserveQuery(2, {Value::Int(11), Value::Int(502)});
  auto covered = mapper.CoveredParams(2);
  EXPECT_EQ(covered, (std::vector<int>{0, 1}));
}

TEST(ParamMapper, SeparateDestinationsHaveSeparateCursors) {
  ParamMapper mapper(2);
  mapper.ObserveResult(1, SymbolResult({"AAA", "BBB"}));
  // Q2 and Q3 each iterate the same source independently.
  mapper.ObserveQuery(2, {Value::String("AAA")});
  mapper.ObserveQuery(3, {Value::String("AAA")});
  mapper.ObserveQuery(2, {Value::String("BBB")});
  mapper.ObserveQuery(3, {Value::String("BBB")});
  EXPECT_EQ(mapper.ConfirmedMappings(2).size(), 1u);
  EXPECT_EQ(mapper.ConfirmedMappings(3).size(), 1u);
}

TEST(ParamMapper, NullParamsIgnored) {
  ParamMapper mapper(2);
  ResultSet rs({"a"});
  rs.AddRow({Value::Null()});
  mapper.ObserveResult(1, rs);
  mapper.ObserveQuery(2, {Value::Null()});
  EXPECT_TRUE(mapper.ConfirmedMappings(2).empty());
}

TEST(ParamMapper, LastResultAccessors) {
  ParamMapper mapper(2);
  EXPECT_FALSE(mapper.HasResult(1));
  EXPECT_EQ(mapper.LastResult(1), nullptr);
  mapper.ObserveResult(1, SymbolResult({"AAA"}));
  EXPECT_TRUE(mapper.HasResult(1));
  ASSERT_NE(mapper.LastResult(1), nullptr);
  EXPECT_EQ(mapper.LastResult(1)->row_count(), 1u);
}

TEST(ParamMapper, NumericCrossTypeMatch) {
  ParamMapper mapper(2);
  ResultSet rs({"v"});
  rs.AddRow({Value::Int(5)});
  mapper.ObserveResult(1, rs);
  mapper.ObserveQuery(2, {Value::Double(5.0)});
  mapper.ObserveResult(1, rs);
  mapper.ObserveQuery(2, {Value::Double(5.0)});
  EXPECT_EQ(mapper.ConfirmedMappings(2).size(), 1u);
}

}  // namespace
}  // namespace chrono::core
