#include <gtest/gtest.h>

#include "cache/lru_cache.h"

namespace chrono::cache {
namespace {

using sql::ResultSet;
using sql::Value;

CachedResult MakeEntry(int rows = 1) {
  CachedResult entry;
  entry.result = ResultSet({"a"});
  for (int i = 0; i < rows; ++i) {
    entry.result.AddRow({Value::Int(i)});
  }
  entry.version = {{0, 1}};
  return entry;
}

TEST(LruCache, PutGetRoundTrip) {
  LruCache cache(1 << 20);
  cache.Put("k", MakeEntry());
  const CachedResult* hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->result.row_count(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(LruCache, MissCounts) {
  LruCache cache(1 << 20);
  EXPECT_EQ(cache.Get("nope"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCache, ReplaceUpdatesValueAndBytes) {
  LruCache cache(1 << 20);
  cache.Put("k", MakeEntry(1));
  size_t small = cache.used_bytes();
  cache.Put("k", MakeEntry(100));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_GT(cache.used_bytes(), small);
  EXPECT_EQ(cache.Get("k")->result.row_count(), 100u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  // Size the cache to hold about 3 entries.
  CachedResult probe = MakeEntry(10);
  size_t entry_bytes = probe.result.ByteSize() + 100;
  LruCache cache(entry_bytes * 3);
  cache.Put("a", MakeEntry(10));
  cache.Put("b", MakeEntry(10));
  cache.Put("c", MakeEntry(10));
  (void)cache.Get("a");  // refresh a; b becomes LRU
  cache.Put("d", MakeEntry(10));
  EXPECT_NE(cache.Peek("a"), nullptr);
  EXPECT_EQ(cache.Peek("b"), nullptr);
  EXPECT_GE(cache.evictions(), 1u);
}

TEST(LruCache, OversizedEntryDropped) {
  LruCache cache(64);
  cache.Put("big", MakeEntry(1000));
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.Get("big"), nullptr);
}

TEST(LruCache, OversizedReplacementErasesOldEntry) {
  CachedResult small = MakeEntry(1);
  LruCache cache(small.result.ByteSize() + 200);
  cache.Put("k", MakeEntry(1));
  ASSERT_NE(cache.Peek("k"), nullptr);
  cache.Put("k", MakeEntry(100000));  // larger than the whole cache
  EXPECT_EQ(cache.Peek("k"), nullptr);
}

TEST(LruCache, PeekDoesNotTouchRecencyOrCounters) {
  CachedResult probe = MakeEntry(10);
  size_t entry_bytes = probe.result.ByteSize() + 100;
  LruCache cache(entry_bytes * 2);
  cache.Put("a", MakeEntry(10));
  cache.Put("b", MakeEntry(10));
  uint64_t hits_before = cache.hits();
  (void)cache.Peek("a");  // does NOT refresh recency
  cache.Put("c", MakeEntry(10));
  EXPECT_EQ(cache.Peek("a"), nullptr);  // a was LRU, evicted
  EXPECT_EQ(cache.hits(), hits_before);
}

TEST(LruCache, EraseRemoves) {
  LruCache cache(1 << 20);
  cache.Put("k", MakeEntry());
  EXPECT_TRUE(cache.Erase("k"));
  EXPECT_FALSE(cache.Erase("k"));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCache, ClearResetsContents) {
  LruCache cache(1 << 20);
  cache.Put("a", MakeEntry());
  cache.Put("b", MakeEntry());
  cache.Clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCache, ByteAccountingConsistent) {
  LruCache cache(1 << 20);
  cache.Put("a", MakeEntry(5));
  cache.Put("b", MakeEntry(7));
  size_t used = cache.used_bytes();
  EXPECT_GT(used, 0u);
  cache.Erase("a");
  cache.Erase("b");
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCache, MetadataPreserved) {
  LruCache cache(1 << 20);
  CachedResult entry = MakeEntry();
  entry.version = {{3, 42}, {5, 7}};
  entry.security_group = 9;
  entry.node_id = 2;
  cache.Put("k", std::move(entry));
  const CachedResult* hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->version, (VersionVector{{3, 42}, {5, 7}}));
  EXPECT_EQ(hit->security_group, 9);
  EXPECT_EQ(hit->node_id, 2);
}

TEST(LruCache, ManyEntriesStayWithinCapacity) {
  LruCache cache(16 * 1024);
  for (int i = 0; i < 1000; ++i) {
    cache.Put("key" + std::to_string(i), MakeEntry(3));
    EXPECT_LE(cache.used_bytes(), cache.capacity_bytes());
  }
  EXPECT_GT(cache.evictions(), 0u);
}

}  // namespace
}  // namespace chrono::cache
