#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/lru_cache.h"

namespace chrono::cache {
namespace {

using sql::ResultSet;
using sql::Value;

CachedResult MakeEntry(int rows = 1) {
  CachedResult entry;
  ResultSet rs({"a"});
  for (int i = 0; i < rows; ++i) {
    rs.AddRow({Value::Int(i)});
  }
  entry.SetResult(std::move(rs));
  entry.version = {{0, 1}};
  return entry;
}

TEST(LruCache, PutGetRoundTrip) {
  LruCache cache(1 << 20);
  cache.Put("k", MakeEntry());
  const CachedResult* hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->result->row_count(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(LruCache, CopiedEntriesShareThePayload) {
  // The zero-copy contract: copying a CachedResult out of the cache bumps
  // a refcount instead of duplicating rows, and the measured byte size
  // rides along so nothing ever re-walks the payload.
  LruCache cache(1 << 20);
  cache.Put("k", MakeEntry(3));
  const CachedResult* hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  CachedResult copy = *hit;
  EXPECT_EQ(copy.result.get(), hit->result.get());
  EXPECT_EQ(copy.result_bytes, hit->result->ByteSize());
}

TEST(LruCache, MissCounts) {
  LruCache cache(1 << 20);
  EXPECT_EQ(cache.Get("nope"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCache, ReplaceUpdatesValueAndBytes) {
  LruCache cache(1 << 20);
  cache.Put("k", MakeEntry(1));
  size_t small = cache.used_bytes();
  cache.Put("k", MakeEntry(100));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_GT(cache.used_bytes(), small);
  EXPECT_EQ(cache.Get("k")->result->row_count(), 100u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  // Size the cache to hold about 3 entries.
  CachedResult probe = MakeEntry(10);
  size_t entry_bytes = probe.result->ByteSize() + 100;
  LruCache cache(entry_bytes * 3);
  cache.Put("a", MakeEntry(10));
  cache.Put("b", MakeEntry(10));
  cache.Put("c", MakeEntry(10));
  (void)cache.Get("a");  // refresh a; b becomes LRU
  cache.Put("d", MakeEntry(10));
  EXPECT_NE(cache.Peek("a"), nullptr);
  EXPECT_EQ(cache.Peek("b"), nullptr);
  EXPECT_GE(cache.evictions(), 1u);
}

TEST(LruCache, OversizedEntryDropped) {
  LruCache cache(64);
  cache.Put("big", MakeEntry(1000));
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.Get("big"), nullptr);
}

TEST(LruCache, OversizedReplacementErasesOldEntry) {
  CachedResult small = MakeEntry(1);
  LruCache cache(small.result->ByteSize() + 200);
  cache.Put("k", MakeEntry(1));
  ASSERT_NE(cache.Peek("k"), nullptr);
  cache.Put("k", MakeEntry(100000));  // larger than the whole cache
  EXPECT_EQ(cache.Peek("k"), nullptr);
}

TEST(LruCache, PeekDoesNotTouchRecencyOrCounters) {
  CachedResult probe = MakeEntry(10);
  size_t entry_bytes = probe.result->ByteSize() + 100;
  LruCache cache(entry_bytes * 2);
  cache.Put("a", MakeEntry(10));
  cache.Put("b", MakeEntry(10));
  uint64_t hits_before = cache.hits();
  (void)cache.Peek("a");  // does NOT refresh recency
  cache.Put("c", MakeEntry(10));
  EXPECT_EQ(cache.Peek("a"), nullptr);  // a was LRU, evicted
  EXPECT_EQ(cache.hits(), hits_before);
}

TEST(LruCache, EraseRemoves) {
  LruCache cache(1 << 20);
  cache.Put("k", MakeEntry());
  EXPECT_TRUE(cache.Erase("k"));
  EXPECT_FALSE(cache.Erase("k"));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCache, ClearResetsContents) {
  LruCache cache(1 << 20);
  cache.Put("a", MakeEntry());
  cache.Put("b", MakeEntry());
  cache.Clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCache, ByteAccountingConsistent) {
  LruCache cache(1 << 20);
  cache.Put("a", MakeEntry(5));
  cache.Put("b", MakeEntry(7));
  size_t used = cache.used_bytes();
  EXPECT_GT(used, 0u);
  cache.Erase("a");
  cache.Erase("b");
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCache, MetadataPreserved) {
  LruCache cache(1 << 20);
  CachedResult entry = MakeEntry();
  entry.version = {{3, 42}, {5, 7}};
  entry.security_group = 9;
  entry.node_id = 2;
  cache.Put("k", std::move(entry));
  const CachedResult* hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->version, (VersionVector{{3, 42}, {5, 7}}));
  EXPECT_EQ(hit->security_group, 9);
  EXPECT_EQ(hit->node_id, 2);
}

TEST(LruCache, ManyEntriesStayWithinCapacity) {
  LruCache cache(16 * 1024);
  for (int i = 0; i < 1000; ++i) {
    cache.Put("key" + std::to_string(i), MakeEntry(3));
    EXPECT_LE(cache.used_bytes(), cache.capacity_bytes());
  }
  EXPECT_GT(cache.evictions(), 0u);
}

// ---- Eviction callbacks (prefetch-efficacy attribution) -----------------

struct Removal {
  std::string key;
  uint64_t prefetch_plan;
  uint64_t prefetch_src;
  uint64_t tmpl;
  uint32_t use_count;
  size_t bytes;
  EvictReason reason;
};

EvictionCallback Collect(std::vector<Removal>* out) {
  return [out](const std::string& key, const CachedResult& value,
               size_t bytes, EvictReason reason) {
    out->push_back({key, value.prefetch_plan, value.prefetch_src, value.tmpl,
                    value.use_count, bytes, reason});
  };
}

CachedResult MakePrefetched(uint64_t plan, uint64_t src, uint64_t tmpl,
                            int rows = 10) {
  CachedResult entry = MakeEntry(rows);
  entry.prefetch_plan = plan;
  entry.prefetch_src = src;
  entry.tmpl = tmpl;
  return entry;
}

TEST(LruCache, EvictionCallbackDistinguishesUnusedFromUsed) {
  CachedResult probe = MakeEntry(10);
  size_t entry_bytes = probe.result->ByteSize() + 100;
  LruCache cache(entry_bytes * 2);
  std::vector<Removal> removals;
  cache.SetEvictionCallback(Collect(&removals));

  cache.Put("touched", MakePrefetched(7, 3, 11));
  cache.Put("untouched", MakePrefetched(7, 0, 12));
  ASSERT_NE(cache.Get("touched"), nullptr);  // bumps use_count to 1

  // Two more entries push both prefetched ones out in LRU order.
  cache.Put("c", MakeEntry(10));
  cache.Put("d", MakeEntry(10));

  ASSERT_GE(removals.size(), 2u);
  const Removal* untouched = nullptr;
  const Removal* touched = nullptr;
  for (const Removal& r : removals) {
    if (r.key == "untouched") untouched = &r;
    if (r.key == "touched") touched = &r;
  }
  // The unused prefetch is the wasted one: attribution intact, zero hits.
  ASSERT_NE(untouched, nullptr);
  EXPECT_EQ(untouched->reason, EvictReason::kCapacity);
  EXPECT_EQ(untouched->use_count, 0u);
  EXPECT_EQ(untouched->prefetch_plan, 7u);
  EXPECT_EQ(untouched->tmpl, 12u);
  // The used prefetch earned its bytes before dying.
  ASSERT_NE(touched, nullptr);
  EXPECT_EQ(touched->reason, EvictReason::kCapacity);
  EXPECT_EQ(touched->use_count, 1u);
  EXPECT_EQ(touched->prefetch_src, 3u);
}

TEST(LruCache, CallbackFiresOnOverwriteEraseAndClear) {
  LruCache cache(1 << 20);
  std::vector<Removal> removals;
  cache.SetEvictionCallback(Collect(&removals));

  cache.Put("k", MakePrefetched(5, 0, 9, 1));
  cache.Put("k", MakeEntry(2));  // overwrite: the old entry is reported
  ASSERT_EQ(removals.size(), 1u);
  EXPECT_EQ(removals[0].reason, EvictReason::kReplaced);
  EXPECT_EQ(removals[0].prefetch_plan, 5u);
  EXPECT_EQ(removals[0].bytes, LruCache::EntryBytes("k", MakePrefetched(5, 0, 9, 1)));

  EXPECT_TRUE(cache.Erase("k"));
  ASSERT_EQ(removals.size(), 2u);
  EXPECT_EQ(removals[1].reason, EvictReason::kErased);
  EXPECT_EQ(removals[1].prefetch_plan, 0u);  // the demand-filled overwrite

  cache.Put("a", MakeEntry());
  cache.Put("b", MakeEntry());
  cache.Clear();
  ASSERT_EQ(removals.size(), 4u);
  EXPECT_EQ(removals[2].reason, EvictReason::kCleared);
  EXPECT_EQ(removals[3].reason, EvictReason::kCleared);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(LruCache, OversizedReplacementReportsBothRemovals) {
  CachedResult small = MakeEntry(1);
  LruCache cache(small.result->ByteSize() + 200);
  std::vector<Removal> removals;
  cache.SetEvictionCallback(Collect(&removals));

  cache.Put("k", MakePrefetched(3, 0, 4, 1));
  // The replacement is larger than the whole cache: the old entry is
  // replaced, then the oversize new entry is itself dropped — the
  // callback must see the prefetched original exactly once.
  cache.Put("k", MakeEntry(100000));
  EXPECT_EQ(cache.Peek("k"), nullptr);
  int prefetched_reports = 0;
  for (const Removal& r : removals) {
    if (r.prefetch_plan == 3) ++prefetched_reports;
  }
  EXPECT_EQ(prefetched_reports, 1);
}

TEST(LruCache, GetIncrementsUseCountEachHit) {
  LruCache cache(1 << 20);
  cache.Put("k", MakePrefetched(1, 0, 2));
  EXPECT_EQ(cache.Get("k")->use_count, 1u);
  EXPECT_EQ(cache.Get("k")->use_count, 2u);
  EXPECT_EQ(cache.Peek("k")->use_count, 2u);  // Peek never bumps

  std::vector<Removal> removals;
  cache.SetEvictionCallback(Collect(&removals));
  cache.Erase("k");
  ASSERT_EQ(removals.size(), 1u);
  EXPECT_EQ(removals[0].use_count, 2u);
}

}  // namespace
}  // namespace chrono::cache
