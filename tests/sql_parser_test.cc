#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/writer.h"

namespace chrono::sql {
namespace {

std::unique_ptr<Statement> MustParse(std::string_view s) {
  auto result = Parse(s);
  EXPECT_TRUE(result.ok()) << s << " -> " << result.status().ToString();
  if (!result.ok()) return nullptr;
  return std::move(result).value();
}

/// Round-trip: parse, write, parse again, write again — the two written
/// forms must agree (writer output is canonical).
void ExpectRoundTrip(std::string_view s) {
  auto stmt = MustParse(s);
  ASSERT_NE(stmt, nullptr);
  std::string first = WriteStatement(*stmt);
  auto reparsed = MustParse(first);
  ASSERT_NE(reparsed, nullptr);
  EXPECT_EQ(first, WriteStatement(*reparsed)) << s;
}

TEST(Parser, SimpleSelect) {
  auto stmt = MustParse("SELECT a, b FROM t WHERE a = 1");
  ASSERT_EQ(stmt->kind, Statement::Kind::kSelect);
  const SelectStmt& sel = *stmt->select;
  ASSERT_EQ(sel.items.size(), 2u);
  EXPECT_EQ(sel.items[0].expr->column, "a");
  EXPECT_EQ(sel.from.table_name, "t");
  ASSERT_NE(sel.where, nullptr);
  EXPECT_EQ(sel.where->bin_op, BinOp::kEq);
}

TEST(Parser, SelectStar) {
  auto stmt = MustParse("SELECT * FROM t");
  EXPECT_TRUE(stmt->select->items[0].is_star);
}

TEST(Parser, QualifiedStar) {
  auto stmt = MustParse("SELECT q1.* FROM t AS q1");
  EXPECT_TRUE(stmt->select->items[0].is_star);
  EXPECT_EQ(stmt->select->items[0].star_qualifier, "q1");
}

TEST(Parser, AliasForms) {
  auto stmt = MustParse("SELECT a AS x, b y FROM t");
  EXPECT_EQ(stmt->select->items[0].alias, "x");
  EXPECT_EQ(stmt->select->items[1].alias, "y");
}

TEST(Parser, QualifiedColumns) {
  auto stmt = MustParse("SELECT t.a FROM t");
  EXPECT_EQ(stmt->select->items[0].expr->table, "t");
  EXPECT_EQ(stmt->select->items[0].expr->column, "a");
}

TEST(Parser, JoinVariants) {
  auto stmt = MustParse(
      "SELECT a FROM t JOIN u ON t.id = u.id LEFT JOIN v ON u.id = v.id, w");
  const SelectStmt& sel = *stmt->select;
  ASSERT_EQ(sel.joins.size(), 3u);
  EXPECT_EQ(sel.joins[0].type, JoinClause::Type::kInner);
  EXPECT_EQ(sel.joins[1].type, JoinClause::Type::kLeft);
  EXPECT_EQ(sel.joins[2].type, JoinClause::Type::kCross);
}

TEST(Parser, LateralJoin) {
  auto stmt = MustParse(
      "SELECT a FROM t LEFT JOIN LATERAL (SELECT b FROM u WHERE u.id = t.id) "
      "AS d ON TRUE");
  ASSERT_EQ(stmt->select->joins.size(), 1u);
  EXPECT_EQ(stmt->select->joins[0].ref.kind, TableRef::Kind::kLateralSubquery);
  EXPECT_EQ(stmt->select->joins[0].ref.alias, "d");
}

TEST(Parser, DerivedTableRequiresAlias) {
  EXPECT_FALSE(Parse("SELECT a FROM (SELECT b FROM t)").ok());
  EXPECT_TRUE(Parse("SELECT a FROM (SELECT b FROM t) AS d").ok());
}

TEST(Parser, WithClause) {
  auto stmt = MustParse(
      "WITH q1 AS (SELECT a FROM t), q2 AS (SELECT b FROM u) "
      "SELECT * FROM q1 LEFT JOIN q2 ON q1.a = q2.b");
  ASSERT_EQ(stmt->select->ctes.size(), 2u);
  EXPECT_EQ(stmt->select->ctes[0].name, "q1");
  EXPECT_EQ(stmt->select->ctes[1].name, "q2");
}

TEST(Parser, GroupByHaving) {
  auto stmt = MustParse(
      "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2");
  EXPECT_EQ(stmt->select->group_by.size(), 1u);
  ASSERT_NE(stmt->select->having, nullptr);
}

TEST(Parser, OrderByLimit) {
  auto stmt = MustParse("SELECT a FROM t ORDER BY a DESC, b LIMIT 10");
  ASSERT_EQ(stmt->select->order_by.size(), 2u);
  EXPECT_TRUE(stmt->select->order_by[0].desc);
  EXPECT_FALSE(stmt->select->order_by[1].desc);
  EXPECT_EQ(stmt->select->limit, 10);
}

TEST(Parser, Distinct) {
  EXPECT_TRUE(MustParse("SELECT DISTINCT a FROM t")->select->distinct);
}

TEST(Parser, RowNumberWindow) {
  auto stmt = MustParse("SELECT row_number() OVER () AS rn FROM t");
  EXPECT_EQ(stmt->select->items[0].expr->kind, Expr::Kind::kRowNumber);
  EXPECT_EQ(stmt->select->items[0].alias, "rn");
}

TEST(Parser, Aggregates) {
  auto stmt = MustParse("SELECT count(*), sum(a), avg(b), min(c), max(d) FROM t");
  EXPECT_EQ(stmt->select->items.size(), 5u);
  for (const auto& item : stmt->select->items) {
    EXPECT_EQ(item.expr->kind, Expr::Kind::kFuncCall);
  }
  EXPECT_EQ(stmt->select->items[0].expr->children[0]->kind, Expr::Kind::kStar);
}

TEST(Parser, OperatorPrecedence) {
  // a = 1 OR b = 2 AND c = 3  ==  a = 1 OR ((b = 2) AND (c = 3))
  auto stmt = MustParse("SELECT x FROM t WHERE a = 1 OR b = 2 AND c = 3");
  const Expr& where = *stmt->select->where;
  EXPECT_EQ(where.bin_op, BinOp::kOr);
  EXPECT_EQ(where.children[1]->bin_op, BinOp::kAnd);
}

TEST(Parser, ArithmeticPrecedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3)
  auto stmt = MustParse("SELECT 1 + 2 * 3");
  const Expr& e = *stmt->select->items[0].expr;
  EXPECT_EQ(e.bin_op, BinOp::kAdd);
  EXPECT_EQ(e.children[1]->bin_op, BinOp::kMul);
}

TEST(Parser, InList) {
  auto stmt = MustParse("SELECT a FROM t WHERE a IN (1, 2, 3)");
  const Expr& where = *stmt->select->where;
  EXPECT_EQ(where.kind, Expr::Kind::kInList);
  EXPECT_EQ(where.children.size(), 4u);  // needle + 3
  EXPECT_FALSE(where.is_not);
}

TEST(Parser, NotInList) {
  auto stmt = MustParse("SELECT a FROM t WHERE a NOT IN (1)");
  EXPECT_TRUE(stmt->select->where->is_not);
}

TEST(Parser, IsNull) {
  auto stmt = MustParse("SELECT a FROM t WHERE a IS NULL AND b IS NOT NULL");
  const Expr& where = *stmt->select->where;
  EXPECT_EQ(where.children[0]->kind, Expr::Kind::kIsNull);
  EXPECT_FALSE(where.children[0]->is_not);
  EXPECT_TRUE(where.children[1]->is_not);
}

TEST(Parser, BetweenDesugars) {
  auto stmt = MustParse("SELECT a FROM t WHERE a BETWEEN 1 AND 5");
  const Expr& where = *stmt->select->where;
  EXPECT_EQ(where.bin_op, BinOp::kAnd);
  EXPECT_EQ(where.children[0]->bin_op, BinOp::kGe);
  EXPECT_EQ(where.children[1]->bin_op, BinOp::kLe);
}

TEST(Parser, ParamPlaceholdersNumberedInOrder) {
  auto stmt = MustParse("SELECT a FROM t WHERE b = ? AND c = ?");
  const Expr& where = *stmt->select->where;
  EXPECT_EQ(where.children[0]->children[1]->param_index, 0);
  EXPECT_EQ(where.children[1]->children[1]->param_index, 1);
}

TEST(Parser, ConcatOperatorDesugarsToFunction) {
  auto stmt = MustParse("SELECT a || b FROM t");
  EXPECT_EQ(stmt->select->items[0].expr->func_name, "concat");
}

TEST(Parser, Insert) {
  auto stmt = MustParse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_EQ(stmt->kind, Statement::Kind::kInsert);
  EXPECT_EQ(stmt->insert->columns, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(stmt->insert->rows.size(), 2u);
  EXPECT_FALSE(stmt->IsReadOnly());
}

TEST(Parser, InsertWithoutColumnList) {
  auto stmt = MustParse("INSERT INTO t VALUES (1, 2)");
  EXPECT_TRUE(stmt->insert->columns.empty());
}

TEST(Parser, Update) {
  auto stmt = MustParse("UPDATE t SET a = 1, b = b + 1 WHERE id = 5");
  ASSERT_EQ(stmt->kind, Statement::Kind::kUpdate);
  EXPECT_EQ(stmt->update->assignments.size(), 2u);
  ASSERT_NE(stmt->update->where, nullptr);
}

TEST(Parser, Delete) {
  auto stmt = MustParse("DELETE FROM t WHERE a = 1");
  ASSERT_EQ(stmt->kind, Statement::Kind::kDelete);
  EXPECT_EQ(stmt->del->table, "t");
}

TEST(Parser, TrailingTokensRejected) {
  EXPECT_FALSE(Parse("SELECT a FROM t garbage garbage").ok());
}

TEST(Parser, EmptyInputRejected) {
  EXPECT_FALSE(Parse("").ok());
}

TEST(Parser, UnbalancedParensRejected) {
  EXPECT_FALSE(Parse("SELECT (a FROM t").ok());
}

TEST(Parser, CloneProducesIdenticalText) {
  auto stmt = MustParse(
      "WITH q AS (SELECT a FROM t) SELECT q.a, count(*) FROM q "
      "WHERE q.a > 3 GROUP BY q.a ORDER BY q.a LIMIT 2");
  auto clone = stmt->Clone();
  EXPECT_EQ(WriteStatement(*stmt), WriteStatement(*clone));
}


TEST(Parser, CreateTable) {
  auto stmt = MustParse(
      "CREATE TABLE t (id bigint, name varchar(40), price double)");
  ASSERT_EQ(stmt->kind, Statement::Kind::kCreateTable);
  EXPECT_EQ(stmt->create->table, "t");
  ASSERT_EQ(stmt->create->columns.size(), 3u);
  EXPECT_EQ(stmt->create->columns[0].type, Value::Type::kInt);
  EXPECT_EQ(stmt->create->columns[1].type, Value::Type::kString);
  EXPECT_EQ(stmt->create->columns[2].type, Value::Type::kDouble);
  EXPECT_FALSE(stmt->IsReadOnly());
}

TEST(Parser, CreateTableRejectsUnknownType) {
  EXPECT_FALSE(Parse("CREATE TABLE t (id blob)").ok());
  EXPECT_FALSE(Parse("CREATE TABLE t ()").ok());
}

// Round-trip property over a corpus of representative statements.
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, WriterOutputIsStable) { ExpectRoundTrip(GetParam()); }

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTripTest,
    ::testing::Values(
        "SELECT a FROM t",
        "SELECT a, b AS x FROM t WHERE a = 1 AND b <> 'z'",
        "SELECT * FROM t LEFT JOIN u ON t.a = u.b",
        "SELECT count(*) FROM t GROUP BY a HAVING count(*) >= 2",
        "SELECT a FROM t ORDER BY a DESC LIMIT 3",
        "WITH q1 AS (SELECT a FROM t) SELECT * FROM q1",
        "SELECT row_number() OVER () FROM t",
        "SELECT a FROM t WHERE b IN (1, 2) OR c IS NULL",
        "SELECT a FROM t, LATERAL (SELECT b FROM u WHERE u.x = t.a) AS d",
        "INSERT INTO t (a) VALUES (1)",
        "UPDATE t SET a = 2 WHERE b = 'k'",
        "DELETE FROM t WHERE a < 0",
        "SELECT -a, NOT (b = 1), a BETWEEN 1 AND 2 FROM t",
        "SELECT abs(a) + 1.5 FROM t WHERE a / 2 = 3",
        "CREATE TABLE t (id bigint, name text, price double)",
        "SELECT CASE WHEN a = 1 THEN 'x' WHEN a = 2 THEN 'y' ELSE 'z' END "
        "FROM t"));

}  // namespace
}  // namespace chrono::sql
