#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/resource.h"

namespace chrono {
namespace {

TEST(EventQueue, RunsInTimestampOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&](SimTime) { order.push_back(3); });
  q.ScheduleAt(10, [&](SimTime) { order.push_back(1); });
  q.ScheduleAt(20, [&](SimTime) { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(10, [&order, i](SimTime) { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterIsRelative) {
  EventQueue q;
  SimTime fired = -1;
  q.ScheduleAt(100, [&](SimTime) {
    q.ScheduleAfter(50, [&](SimTime now) { fired = now; });
  });
  q.RunAll();
  EXPECT_EQ(fired, 150);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(10, [&](SimTime) { ++fired; });
  q.ScheduleAt(20, [&](SimTime) { ++fired; });
  q.ScheduleAt(21, [&](SimTime) { ++fired; });
  q.RunUntil(20);
  EXPECT_EQ(fired, 2);  // events at exactly `until` run
  EXPECT_EQ(q.now(), 20);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.RunUntil(500);
  EXPECT_EQ(q.now(), 500);
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue q;
  q.ScheduleAt(100, [&](SimTime) {
    q.ScheduleAt(50, [](SimTime) {});  // in the past: clamped
  });
  q.RunAll();
  EXPECT_EQ(q.now(), 100);
}

TEST(EventQueue, EventsScheduledDuringRunExecute) {
  EventQueue q;
  int depth = 0;
  std::function<void(SimTime)> recurse = [&](SimTime) {
    if (++depth < 10) q.ScheduleAfter(1, recurse);
  };
  q.ScheduleAt(0, recurse);
  q.RunAll();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(q.now(), 9);
}

TEST(Resource, SingleWorkerSerialises) {
  EventQueue q;
  Resource r(&q, 1);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    r.Submit(10, [&](SimTime now) { completions.push_back(now); });
  }
  q.RunAll();
  EXPECT_EQ(completions, (std::vector<SimTime>{10, 20, 30}));
}

TEST(Resource, ParallelWorkersOverlap) {
  EventQueue q;
  Resource r(&q, 3);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    r.Submit(10, [&](SimTime now) { completions.push_back(now); });
  }
  q.RunAll();
  EXPECT_EQ(completions, (std::vector<SimTime>{10, 10, 10}));
}

TEST(Resource, QueueDrainsInFifoOrder) {
  EventQueue q;
  Resource r(&q, 2);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    r.Submit(10, [&order, i](SimTime) { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Resource, TracksBusyTime) {
  EventQueue q;
  Resource r(&q, 2);
  r.Submit(10, [](SimTime) {});
  r.Submit(15, [](SimTime) {});
  q.RunAll();
  EXPECT_EQ(r.total_busy_time(), 25);
  EXPECT_EQ(r.busy(), 0);
}

// Queueing behaviour behind Fig. 10c: with load above capacity, waiting
// time grows with queue position.
TEST(Resource, ContentionGrowsLatency) {
  EventQueue q;
  Resource r(&q, 1);
  SimTime last = 0;
  for (int i = 0; i < 20; ++i) {
    r.Submit(5, [&](SimTime now) { last = now; });
  }
  q.RunAll();
  EXPECT_EQ(last, 100);  // 20 jobs * 5us on one worker
}

}  // namespace
}  // namespace chrono
