// Experiment harness: measurement windows, timelines, repetition, and the
// qualitative relationships the paper's figures rest on.

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "workloads/tpce.h"

namespace chrono::harness {
namespace {

std::unique_ptr<workloads::Workload> TinyTpce() {
  workloads::TpceWorkload::Config c;
  c.customers = 30;
  c.securities = 60;
  c.watch_lists = 30;
  c.watch_items_per_list = 8;
  c.trades = 200;
  return std::make_unique<workloads::TpceWorkload>(c);
}

ExperimentConfig TinyConfig() {
  ExperimentConfig config;
  config.clients = 3;
  config.warmup = 5 * kMicrosPerSecond;
  config.duration = 10 * kMicrosPerSecond;
  config.middleware.mode = core::SystemMode::kChrono;
  return config;
}

TEST(Harness, ProducesMeasurements) {
  ExperimentResult result = RunExperiment(TinyTpce, TinyConfig());
  EXPECT_EQ(result.errors, 0u) << result.first_error;
  EXPECT_GT(result.queries_measured, 50u);
  EXPECT_GT(result.transactions, 5u);
  EXPECT_GT(result.avg_response_ms, 0.0);
  EXPECT_GE(result.p95_ms, result.p50_ms);
}

TEST(Harness, TimelineCoversWarmupAndMeasurement) {
  ExperimentConfig config = TinyConfig();
  config.timeline_bucket = 5 * kMicrosPerSecond;
  ExperimentResult result = RunExperiment(TinyTpce, config);
  ASSERT_GE(result.timeline.size(), 2u);
  EXPECT_DOUBLE_EQ(result.timeline.front().first, 0.0);
  for (const auto& [sec, ms] : result.timeline) {
    EXPECT_GE(ms, 0.0);
    EXPECT_LE(sec, 15.0);
  }
}

TEST(Harness, WarmupExcludedFromSamples) {
  // With a warm-up longer than the run, nothing is measured.
  ExperimentConfig config = TinyConfig();
  config.warmup = 20 * kMicrosPerSecond;
  config.duration = 0;
  ExperimentResult result = RunExperiment(TinyTpce, config);
  EXPECT_EQ(result.queries_measured, 0u);
}

TEST(Harness, MoreClientsMoreThroughput) {
  ExperimentConfig config = TinyConfig();
  config.clients = 1;
  uint64_t q1 = RunExperiment(TinyTpce, config).queries_measured;
  config.clients = 6;
  uint64_t q6 = RunExperiment(TinyTpce, config).queries_measured;
  EXPECT_GT(q6, q1 * 3);
}

TEST(Harness, RepeatedRunsAggregate) {
  RepeatedResult repeated = RunRepeated(TinyTpce, TinyConfig(), 3);
  EXPECT_EQ(repeated.response_ms.count(), 3u);
  EXPECT_EQ(repeated.hit_rate.count(), 3u);
  EXPECT_GT(repeated.response_ms.Mean(), 0.0);
  EXPECT_GE(repeated.response_ms.ConfidenceInterval95(), 0.0);
}

TEST(Harness, SeedsChangeOutcomes) {
  ExperimentConfig config = TinyConfig();
  config.seed = 1;
  ExperimentResult a = RunExperiment(TinyTpce, config);
  config.seed = 2;
  ExperimentResult b = RunExperiment(TinyTpce, config);
  // Different seeds -> different client behaviour -> different samples.
  EXPECT_NE(a.queries_measured, b.queries_measured);
}

TEST(Harness, SecurityGroupsReducesSharing) {
  ExperimentConfig shared = TinyConfig();
  shared.clients = 4;
  shared.security_groups = 1;
  ExperimentConfig isolated = shared;
  isolated.security_groups = 4;  // every client its own policy (§5.2.1)
  double shared_hits = RunExperiment(TinyTpce, shared).cache_hit_rate;
  double isolated_hits = RunExperiment(TinyTpce, isolated).cache_hit_rate;
  EXPECT_GE(shared_hits, isolated_hits);
  // Even fully isolated clients benefit from predictive caching (§5.2.1).
  EXPECT_GT(isolated_hits, 0.1);
}

TEST(Harness, MetricsSummedAcrossNodes) {
  ExperimentConfig config = TinyConfig();
  config.nodes = 2;
  config.clients = 4;
  ExperimentResult result = RunExperiment(TinyTpce, config);
  EXPECT_EQ(result.errors, 0u) << result.first_error;
  EXPECT_EQ(result.metrics.reads + result.metrics.writes,
            static_cast<uint64_t>(result.metrics.reads + result.metrics.writes));
  EXPECT_GT(result.metrics.reads, 0u);
}

TEST(Harness, AblationSwitchesSurviveModeFinalize) {
  // Disabling combining on kChrono must actually disable it.
  ExperimentConfig config = TinyConfig();
  config.middleware.enable_combining = false;
  ExperimentResult result = RunExperiment(TinyTpce, config);
  EXPECT_EQ(result.metrics.remote_combined, 0u);
}

}  // namespace
}  // namespace chrono::harness
