// Direct unit tests for the result-set splitter (§4.1.1), using
// hand-constructed decode plans that mirror the paper's Fig. 8 example.

#include <gtest/gtest.h>

#include "core/result_splitter.h"
#include "sql/template.h"

namespace chrono::core {
namespace {

using sql::ResultSet;
using sql::Value;

class SplitterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Q1: SELECT symb FROM watch_item WHERE wl = ?   (params: [1])
    auto q1 = sql::AnalyzeQuery("SELECT symb FROM watch_item WHERE wl = 1");
    ASSERT_TRUE(q1.ok());
    q1_ = q1->tmpl->id;
    registry_.Register(q1->tmpl);
    // Q2: SELECT num_out FROM security WHERE s_symb = ?
    auto q2 =
        sql::AnalyzeQuery("SELECT num_out FROM security WHERE s_symb = 'X'");
    ASSERT_TRUE(q2.ok());
    q2_ = q2->tmpl->id;
    registry_.Register(q2->tmpl);
  }

  /// Combined layout (Fig. 8): [symb, q1ck, num_out, q2ck].
  CombinedQuery MakePlan() {
    CombinedQuery plan;
    DecodeSlot s1;
    s1.tmpl = q1_;
    s1.result_cols = {0};
    s1.result_names = {"symb"};
    s1.ck_cols = {1};
    s1.bound_params = {Value::Int(1)};
    plan.slots.push_back(s1);
    DecodeSlot s2;
    s2.tmpl = q2_;
    s2.result_cols = {2};
    s2.result_names = {"num_out"};
    s2.ck_cols = {3};
    s2.parents = {0};
    s2.bound_params = {Value::Null()};
    s2.mapped_params = {{0, 0}};  // param 0 <- combined column 0 (symb)
    plan.slots.push_back(s2);
    return plan;
  }

  static ResultSet Combined(std::vector<std::vector<Value>> rows) {
    ResultSet rs({"symb", "q1ck", "num_out", "q2ck"});
    for (auto& r : rows) rs.AddRow(std::move(r));
    return rs;
  }

  TemplateRegistry registry_;
  TemplateId q1_ = 0;
  TemplateId q2_ = 0;
};

TEST_F(SplitterTest, BasicLoopDecomposition) {
  auto split = SplitResult(
      MakePlan(),
      Combined({{Value::String("AAA"), Value::Int(1), Value::Int(100),
                 Value::Int(11)},
                {Value::String("BBB"), Value::Int(2), Value::Int(200),
                 Value::Int(12)}}),
      registry_);
  ASSERT_TRUE(split.ok());
  ASSERT_EQ(split->size(), 3u);  // Q1 + two Q2 iterations

  const auto& q1_entry = (*split)[2];  // root closes last (flush order)
  std::vector<const SplitEntry*> q2_entries;
  const SplitEntry* root = nullptr;
  for (const auto& e : *split) {
    if (e.tmpl == q1_) root = &e;
    if (e.tmpl == q2_) q2_entries.push_back(&e);
  }
  (void)q1_entry;
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->result->row_count(), 2u);
  ASSERT_EQ(q2_entries.size(), 2u);
  EXPECT_EQ(q2_entries[0]->result->row_count(), 1u);
  EXPECT_EQ(q2_entries[0]->result->row(0)[0], Value::Int(100));
  // Iteration keys are the parameterised query texts (§4.1.1).
  EXPECT_NE(q2_entries[0]->key.find("'AAA'"), std::string::npos);
  EXPECT_NE(q2_entries[1]->key.find("'BBB'"), std::string::npos);
}

// The Fig. 8 fan-out case: a Q1 row matching multiple Q2 rows repeats
// Q1's values with the same candidate key; repeated symbols with distinct
// candidate keys are different rows.
TEST_F(SplitterTest, Figure8Deduplication) {
  auto split = SplitResult(
      MakePlan(),
      Combined({
          // symb=ABC (ck 1) joins two security rows -> Q1 row repeated.
          {Value::String("ABC"), Value::Int(1), Value::Int(100), Value::Int(11)},
          {Value::String("ABC"), Value::Int(1), Value::Int(150), Value::Int(12)},
          // Same symbol again but a NEW watch-item row (ck 2).
          {Value::String("ABC"), Value::Int(2), Value::Int(100), Value::Int(11)},
      }),
      registry_);
  ASSERT_TRUE(split.ok());
  const SplitEntry* root = nullptr;
  std::vector<const SplitEntry*> children;
  for (const auto& e : *split) {
    if (e.tmpl == q1_) root = &e;
    else children.push_back(&e);
  }
  ASSERT_NE(root, nullptr);
  // Rows 1+2 deduplicate (same ck); row 3 is kept (different ck).
  EXPECT_EQ(root->result->row_count(), 2u);
  // First Q2 iteration has BOTH matched rows; second has one.
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0]->result->row_count(), 2u);
  EXPECT_EQ(children[1]->result->row_count(), 1u);
}

TEST_F(SplitterTest, NullChildCandidateKeyMeansEmptyIteration) {
  auto split = SplitResult(
      MakePlan(),
      Combined({{Value::String("AAA"), Value::Int(1), Value::Null(),
                 Value::Null()}}),
      registry_);
  ASSERT_TRUE(split.ok());
  ASSERT_EQ(split->size(), 2u);
  for (const auto& e : *split) {
    if (e.tmpl == q2_) {
      EXPECT_TRUE(e.result->empty());
      EXPECT_NE(e.key.find("'AAA'"), std::string::npos);
    }
  }
}

TEST_F(SplitterTest, EmptyCombinedStillEmitsEmptyRoot) {
  auto split = SplitResult(MakePlan(), Combined({}), registry_);
  ASSERT_TRUE(split.ok());
  ASSERT_EQ(split->size(), 1u);
  EXPECT_EQ((*split)[0].tmpl, q1_);
  EXPECT_TRUE((*split)[0].result->empty());
  EXPECT_EQ((*split)[0].result->columns(), (std::vector<std::string>{"symb"}));
}

TEST_F(SplitterTest, SplitColumnsMatchOriginalNames) {
  auto split = SplitResult(
      MakePlan(),
      Combined({{Value::String("AAA"), Value::Int(1), Value::Int(100),
                 Value::Int(11)}}),
      registry_);
  ASSERT_TRUE(split.ok());
  for (const auto& e : *split) {
    if (e.tmpl == q1_) {
      EXPECT_EQ(e.result->columns(), (std::vector<std::string>{"symb"}));
    } else {
      EXPECT_EQ(e.result->columns(), (std::vector<std::string>{"num_out"}));
    }
  }
}

TEST_F(SplitterTest, RootKeyUsesBoundParams) {
  auto split = SplitResult(
      MakePlan(),
      Combined({{Value::String("AAA"), Value::Int(1), Value::Int(100),
                 Value::Int(11)}}),
      registry_);
  ASSERT_TRUE(split.ok());
  for (const auto& e : *split) {
    if (e.tmpl == q1_) {
      EXPECT_NE(e.key.find("wl = 1"), std::string::npos) << e.key;
    }
  }
}

}  // namespace
}  // namespace chrono::core
