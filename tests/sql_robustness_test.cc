// Robustness: the parser must return Status (never crash or hang) on
// malformed, truncated, and randomly mutated inputs — a middleware parses
// untrusted client text.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/parser.h"

namespace chrono::sql {
namespace {

TEST(ParserRobustness, MalformedInputsReturnStatus) {
  const char* kInputs[] = {
      "",
      ";",
      "SELECT",
      "SELECT FROM",
      "SELECT a FROM",
      "SELECT a FROM t WHERE",
      "SELECT a FROM t GROUP",
      "SELECT a FROM t ORDER",
      "SELECT a FROM t LIMIT",
      "SELECT a FROM t LIMIT abc",
      "WITH",
      "WITH q AS",
      "WITH q AS (SELECT a FROM t",
      "INSERT",
      "INSERT INTO",
      "INSERT INTO t",
      "INSERT INTO t VALUES",
      "INSERT INTO t VALUES (",
      "UPDATE",
      "UPDATE t SET",
      "UPDATE t SET a",
      "UPDATE t SET a =",
      "DELETE",
      "DELETE FROM",
      "CREATE",
      "CREATE TABLE",
      "CREATE TABLE t",
      "CREATE TABLE t (",
      "SELECT * FROM t JOIN",
      "SELECT * FROM t JOIN u",
      "SELECT * FROM t JOIN u ON",
      "SELECT ((((((((a FROM t",
      "SELECT a FROM t WHERE b = 'unterminated",
      "SELECT a FROM t WHERE b IN",
      "SELECT a FROM t WHERE b IN (",
      "SELECT a FROM t WHERE b BETWEEN 1",
      "SELECT a FROM t WHERE b BETWEEN 1 AND",
      "SELECT row_number() FROM t",        // missing OVER ()
      "SELECT row_number() OVER FROM t",   // missing parens
      "SELECT a b c FROM t",
      "@#$%^&",
      "SELECT \x01\x02 FROM t",
  };
  for (const char* input : kInputs) {
    auto result = Parse(input);
    EXPECT_FALSE(result.ok()) << "unexpectedly parsed: " << input;
  }
}

TEST(ParserRobustness, TruncationsOfValidQueryNeverCrash) {
  const std::string query =
      "WITH q1 AS (SELECT a, b FROM t WHERE c = 'x' AND d IN (1, 2)) "
      "SELECT q1.a, count(*) FROM q1 LEFT JOIN u ON q1.a = u.z "
      "GROUP BY q1.a HAVING count(*) > 1 ORDER BY q1.a DESC LIMIT 5";
  for (size_t len = 0; len <= query.size(); ++len) {
    auto result = Parse(query.substr(0, len));
    // Some prefixes are valid statements; most are errors. Either way the
    // call must return normally.
    (void)result;
  }
  SUCCEED();
}

TEST(ParserRobustness, RandomMutationsNeverCrash) {
  const std::string base =
      "SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 1 AND x IN (1,2)";
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = base;
    int edits = static_cast<int>(rng.NextInt(1, 5));
    for (int e = 0; e < edits; ++e) {
      size_t pos = static_cast<size_t>(rng.NextBounded(mutated.size()));
      switch (rng.NextBounded(3)) {
        case 0:  // replace with printable ASCII
          mutated[pos] = static_cast<char>(rng.NextInt(32, 126));
          break;
        case 1:  // delete
          mutated.erase(pos, 1);
          break;
        default:  // duplicate
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
      if (mutated.empty()) break;
    }
    auto result = Parse(mutated);
    (void)result;  // must not crash; ok or error both acceptable
  }
  SUCCEED();
}

TEST(ParserRobustness, DeeplyNestedParensBounded) {
  // Heavy nesting must parse (or fail) without stack issues at reasonable
  // depth.
  std::string query = "SELECT ";
  for (int i = 0; i < 200; ++i) query += "(";
  query += "1";
  for (int i = 0; i < 200; ++i) query += ")";
  auto result = Parse(query);
  EXPECT_TRUE(result.ok());
}

TEST(ParserRobustness, LongInListHandled) {
  std::string query = "SELECT a FROM t WHERE b IN (0";
  for (int i = 1; i < 5000; ++i) query += ", " + std::to_string(i);
  query += ")";
  auto result = Parse(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->select->where->children.size(), 5001u);
}

}  // namespace
}  // namespace chrono::sql
