#include <gtest/gtest.h>

#include "sql/result_set.h"
#include "sql/value.h"

namespace chrono::sql {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), Value::Type::kNull);
}

TEST(Value, TypedConstruction) {
  EXPECT_EQ(Value::Int(5).type(), Value::Type::kInt);
  EXPECT_EQ(Value::Double(1.5).type(), Value::Type::kDouble);
  EXPECT_EQ(Value::String("x").type(), Value::Type::kString);
  EXPECT_EQ(Value::Int(5).AsInt(), 5);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value::String("x").AsString(), "x");
}

TEST(Value, AsDoublePromotesInt) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble(), 3.0);
}

TEST(Value, SqlEqualityNumericCrossType) {
  EXPECT_TRUE(Value::Int(2).EqualsSql(Value::Double(2.0)));
  EXPECT_FALSE(Value::Int(2).EqualsSql(Value::Double(2.5)));
}

TEST(Value, SqlEqualityNullNeverEqual) {
  EXPECT_FALSE(Value::Null().EqualsSql(Value::Null()));
  EXPECT_FALSE(Value::Null().EqualsSql(Value::Int(1)));
  EXPECT_FALSE(Value::Int(1).EqualsSql(Value::Null()));
}

TEST(Value, SqlEqualityStringsNeverEqualNumbers) {
  EXPECT_FALSE(Value::String("2").EqualsSql(Value::Int(2)));
  EXPECT_TRUE(Value::String("ab").EqualsSql(Value::String("ab")));
}

TEST(Value, CompareOrdering) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Int(3).Compare(Value::Double(2.5)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::String("a").Compare(Value::String("b")), 0);
  // NULLs first, strings after numbers.
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_GT(Value::String("a").Compare(Value::Int(99)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(Value, StructuralEquality) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));  // numeric cross-type
  EXPECT_NE(Value::String("2"), Value::Int(2));
  EXPECT_NE(Value::Int(1), Value::Int(2));
}

TEST(Value, SqlLiteralRendering) {
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
  EXPECT_EQ(Value::Int(-7).ToSqlLiteral(), "-7");
  EXPECT_EQ(Value::String("it's").ToSqlLiteral(), "'it''s'");
  // Doubles keep a decimal marker so they round-trip as doubles.
  EXPECT_EQ(Value::Double(3).ToSqlLiteral(), "3.0");
}

TEST(Value, DoubleLiteralRoundTripsPrecisely) {
  double v = 0.1 + 0.2;  // 0.30000000000000004
  std::string lit = Value::Double(v).ToSqlLiteral();
  EXPECT_DOUBLE_EQ(std::stod(lit), v);
}

TEST(Value, ByteSizeIncludesStringPayload) {
  EXPECT_GT(Value::String(std::string(100, 'x')).ByteSize(),
            Value::String("x").ByteSize());
}

TEST(ResultSet, ColumnLookup) {
  ResultSet rs({"a", "b"});
  EXPECT_EQ(rs.ColumnIndex("a"), 0);
  EXPECT_EQ(rs.ColumnIndex("b"), 1);
  EXPECT_EQ(rs.ColumnIndex("c"), -1);
}

TEST(ResultSet, AtAccessor) {
  ResultSet rs({"a", "b"});
  rs.AddRow({Value::Int(1), Value::String("x")});
  EXPECT_EQ(rs.At(0, "b"), Value::String("x"));
}

TEST(ResultSet, EqualityIsStructural) {
  ResultSet a({"x"});
  a.AddRow({Value::Int(1)});
  ResultSet b({"x"});
  b.AddRow({Value::Int(1)});
  EXPECT_EQ(a, b);
  b.AddRow({Value::Int(2)});
  EXPECT_NE(a, b);
  ResultSet c({"y"});
  c.AddRow({Value::Int(1)});
  EXPECT_NE(a, c);  // column names matter
}

TEST(ResultSet, ByteSizeGrowsWithRows) {
  ResultSet rs({"a"});
  size_t empty = rs.ByteSize();
  rs.AddRow({Value::String("payload")});
  EXPECT_GT(rs.ByteSize(), empty);
}

TEST(ResultSet, ToStringAlignsColumns) {
  ResultSet rs({"name", "n"});
  rs.AddRow({Value::String("alpha"), Value::Int(1)});
  rs.AddRow({Value::String("b"), Value::Int(22)});
  std::string text = rs.ToString();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
}

}  // namespace
}  // namespace chrono::sql
