// Tests for the always-on event journal: SPSC ring round-trips, the
// drop-never-block contract with exact accounting, a multi-thread storm
// that forces buffer wrap while checking for torn events, and the binary
// file sink framing. The storm test is part of the TSan CI suite.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/journal.h"

namespace chrono::obs {
namespace {

/// Collects every drained event. OnEvents is serialised by the journal's
/// drain mutex, but the test threads read the result after Stop(), so a
/// mutex keeps TSan happy about the handoff.
class CollectSink : public JournalSink {
 public:
  void OnEvents(const JournalEvent* events, size_t count) override {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.insert(events_.end(), events, events + count);
  }

  std::vector<JournalEvent> Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<JournalEvent> events_;
};

EventJournal::Options ManualDrain(size_t buffer_events) {
  EventJournal::Options options;
  options.buffer_events = buffer_events;
  options.drain_interval_ms = 0;  // tests drain explicitly
  return options;
}

TEST(EventJournal, ManualDrainRoundTripPreservesOrderAndPayload) {
  EventJournal journal(ManualDrain(64));
  CollectSink sink;
  journal.AddSink(&sink);

  for (uint64_t i = 0; i < 10; ++i) {
    JournalEvent event;
    event.type = JournalEventType::kEntryInstalled;
    event.ts_us = 100 + i;
    event.plan = 7;
    event.src = 3;
    event.tmpl = 9;
    event.a = i;
    event.client = 42;
    event.flags = kJournalFlagUsed;
    journal.Record(event);
  }
  EXPECT_EQ(journal.Drain(), 10u);

  std::vector<JournalEvent> got = sink.Snapshot();
  ASSERT_EQ(got.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(got[i].ts_us, 100 + i);
    EXPECT_EQ(got[i].plan, 7u);
    EXPECT_EQ(got[i].src, 3u);
    EXPECT_EQ(got[i].tmpl, 9u);
    EXPECT_EQ(got[i].a, i);
    EXPECT_EQ(got[i].client, 42u);
    EXPECT_EQ(got[i].type, JournalEventType::kEntryInstalled);
    EXPECT_EQ(got[i].flags, kJournalFlagUsed);
  }
  EXPECT_EQ(journal.events_recorded(), 10u);
  EXPECT_EQ(journal.events_drained(), 10u);
  EXPECT_EQ(journal.events_dropped(), 0u);
  EXPECT_EQ(journal.buffer_count(), 1u);
}

TEST(EventJournal, ZeroTimestampIsStampedNonZeroIsKept) {
  EventJournal journal(ManualDrain(8));
  CollectSink sink;
  journal.AddSink(&sink);

  JournalEvent stamped;  // ts_us == 0: journal supplies its own clock
  journal.Record(stamped);
  JournalEvent virtual_time;
  virtual_time.ts_us = 12345;  // simulator-style virtual timestamp
  journal.Record(virtual_time);
  journal.Drain();

  std::vector<JournalEvent> got = sink.Snapshot();
  ASSERT_EQ(got.size(), 2u);
  // Drain sorts by timestamp; find each by identity.
  bool saw_virtual = false;
  for (const JournalEvent& event : got) {
    if (event.ts_us == 12345) {
      saw_virtual = true;
    } else {
      EXPECT_GT(event.ts_us, 0u) << "ts_us == 0 must be stamped";
    }
  }
  EXPECT_TRUE(saw_virtual);
}

TEST(EventJournal, FullRingDropsAndCountsExactly) {
  // buffer_events = 4 is already a power of two: the 5th event in a burst
  // must be dropped, not blocked on, and must not consume a slot.
  EventJournal journal(ManualDrain(4));
  CollectSink sink;
  journal.AddSink(&sink);

  for (uint64_t i = 0; i < 10; ++i) {
    JournalEvent event;
    event.a = i;
    event.ts_us = i + 1;
    journal.Record(event);
  }
  EXPECT_EQ(journal.events_recorded(), 4u);
  EXPECT_EQ(journal.events_dropped(), 6u);
  EXPECT_EQ(journal.Drain(), 4u);

  // The ring is empty again: new events are accepted, drops stay at 6.
  JournalEvent event;
  event.a = 99;
  event.ts_us = 99;
  journal.Record(event);
  EXPECT_EQ(journal.Drain(), 1u);
  EXPECT_EQ(journal.events_recorded(), 5u);
  EXPECT_EQ(journal.events_drained(), 5u);
  EXPECT_EQ(journal.events_dropped(), 6u);

  std::vector<JournalEvent> got = sink.Snapshot();
  ASSERT_EQ(got.size(), 5u);
  // The survivors of the burst are the first four — drops hit the tail.
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(got[i].a, i);
  EXPECT_EQ(got[4].a, 99u);
}

TEST(EventJournal, StopIsIdempotentAndRecordAfterStopStillDrains) {
  EventJournal journal(ManualDrain(16));
  CollectSink sink;
  journal.AddSink(&sink);

  JournalEvent event;
  event.ts_us = 1;
  journal.Record(event);
  journal.Stop();  // runs the final drain even in manual mode
  EXPECT_EQ(journal.events_drained(), 1u);
  journal.Stop();  // idempotent
  EXPECT_EQ(journal.events_drained(), 1u);

  journal.Record(event);  // documented: still accepted, waits for Drain()
  EXPECT_EQ(journal.Drain(), 1u);
  EXPECT_EQ(sink.Snapshot().size(), 2u);
}

// The satellite contention test: many writer threads, a ring small enough
// to wrap thousands of times under the background drainer, and payloads
// that make any torn (half-written) or duplicated event detectable.
TEST(EventJournal, ContentionStormNoTornEventsExactAccounting) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 30000;
  constexpr uint64_t kSalt = 0x9e3779b97f4a7c15ull;

  EventJournal::Options options;
  options.buffer_events = 128;  // tiny: forces wrap + drops under load
  options.drain_interval_ms = 1;
  EventJournal journal(options);
  CollectSink sink;
  journal.AddSink(&sink);

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&journal, t] {
      for (uint64_t seq = 0; seq < kPerThread; ++seq) {
        JournalEvent event;
        event.type = JournalEventType::kEntryUsed;
        // ts strictly increasing per thread so the drain's stable sort
        // preserves each thread's recording order end-to-end.
        event.ts_us = seq + 1;
        event.client = static_cast<uint32_t>(t);
        event.a = seq;
        event.b = seq ^ kSalt;                      // torn-write detector
        event.c = (static_cast<uint64_t>(t) << 32) + seq;  // checksum
        journal.Record(event);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  journal.Stop();  // joins the drainer and runs the final drain

  const uint64_t attempts = static_cast<uint64_t>(kThreads) * kPerThread;
  const uint64_t recorded = journal.events_recorded();
  const uint64_t dropped = journal.events_dropped();

  // Exact accounting: every Record() either landed in a ring (and was
  // drained) or was counted as a drop — nothing lost, nothing duplicated.
  EXPECT_EQ(recorded + dropped, attempts);
  EXPECT_EQ(journal.events_drained(), recorded);
  EXPECT_EQ(journal.buffer_count(), static_cast<size_t>(kThreads));
  // 128-slot rings against 30k events/thread must actually wrap and shed
  // load, otherwise this test isn't exercising contention.
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(recorded, 0u);

  std::vector<JournalEvent> got = sink.Snapshot();
  ASSERT_EQ(got.size(), recorded);

  uint64_t per_thread_last[kThreads];
  uint64_t per_thread_count[kThreads] = {};
  for (int t = 0; t < kThreads; ++t) per_thread_last[t] = ~0ull;
  for (const JournalEvent& event : got) {
    ASSERT_LT(event.client, static_cast<uint32_t>(kThreads));
    const uint64_t t = event.client;
    const uint64_t seq = event.a;
    // A torn event would mix words from two writes; all three derived
    // fields must agree with each other and with the timestamp.
    ASSERT_EQ(event.b, seq ^ kSalt) << "torn event payload";
    ASSERT_EQ(event.c, (t << 32) + seq) << "torn event checksum";
    ASSERT_EQ(event.ts_us, seq + 1) << "torn event timestamp";
    ASSERT_EQ(event.type, JournalEventType::kEntryUsed);
    // SPSC order: each thread's surviving events arrive in recording
    // order with no duplicates (drops may punch holes, order remains).
    if (per_thread_last[t] != ~0ull) {
      ASSERT_GT(seq, per_thread_last[t]) << "reordered or duplicated";
    }
    per_thread_last[t] = seq;
    ++per_thread_count[t];
  }
  uint64_t counted = 0;
  for (int t = 0; t < kThreads; ++t) counted += per_thread_count[t];
  EXPECT_EQ(counted, recorded);
}

TEST(JournalFile, SinkRoundTripsThroughReader) {
  const std::string path =
      testing::TempDir() + "chrono_journal_roundtrip.chrj";
  {
    EventJournal journal(ManualDrain(64));
    std::unique_ptr<JournalFileSink> sink = JournalFileSink::Open(path);
    ASSERT_NE(sink, nullptr);
    journal.AddSink(sink.get());

    for (uint64_t i = 0; i < 33; ++i) {
      JournalEvent event;
      event.type = i % 2 == 0 ? JournalEventType::kEntryInstalled
                              : JournalEventType::kRequest;
      event.ts_us = i + 1;
      event.plan = i;
      event.a = i * 3;
      event.flags = static_cast<uint8_t>(i & 0x7);
      journal.Record(event);
    }
    journal.Stop();
    sink->Flush();
    EXPECT_EQ(sink->events_written(), 33u);
  }

  Result<std::vector<JournalEvent>> events = ReadJournalFile(path);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events->size(), 33u);
  for (uint64_t i = 0; i < 33; ++i) {
    EXPECT_EQ((*events)[i].ts_us, i + 1);
    EXPECT_EQ((*events)[i].plan, i);
    EXPECT_EQ((*events)[i].a, i * 3);
    EXPECT_EQ((*events)[i].flags, static_cast<uint8_t>(i & 0x7));
  }
  std::remove(path.c_str());
}

TEST(JournalFile, ReaderRejectsBadMagic) {
  const std::string path = testing::TempDir() + "chrono_journal_bad.chrj";
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a journal", f);
  std::fclose(f);

  Result<std::vector<JournalEvent>> events = ReadJournalFile(path);
  EXPECT_FALSE(events.ok());
  std::remove(path.c_str());
}

TEST(JournalFile, ReaderRejectsTruncatedTrailingRecord) {
  const std::string path =
      testing::TempDir() + "chrono_journal_truncated.chrj";
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  JournalFileHeader header;
  ASSERT_EQ(std::fwrite(&header, sizeof(header), 1, f), 1u);
  JournalEvent event;
  event.ts_us = 1;
  ASSERT_EQ(std::fwrite(&event, sizeof(event), 1, f), 1u);
  // Half of a second record: the reader must flag the file, not silently
  // swallow the fragment.
  ASSERT_EQ(std::fwrite(&event, sizeof(event) / 2, 1, f), 1u);
  std::fclose(f);

  Result<std::vector<JournalEvent>> events = ReadJournalFile(path);
  EXPECT_FALSE(events.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace chrono::obs
