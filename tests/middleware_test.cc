// Middleware behaviour (Algorithm 1, §5): caching, session semantics,
// security groups, request coalescing, predictive combining end to end —
// driven in virtual time against a real database instance.

#include <gtest/gtest.h>

#include "core/middleware.h"
#include "db/database.h"

namespace chrono::core {
namespace {

using sql::ResultSet;
using sql::Value;

class MiddlewareTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.catalog()
                    ->CreateTable("watch_item",
                                  {db::ColumnDef{"wi_wl_id", Value::Type::kInt},
                                   db::ColumnDef{"wi_s_symb",
                                                 Value::Type::kString}})
                    .ok());
    ASSERT_TRUE(db_.catalog()
                    ->CreateTable("security",
                                  {db::ColumnDef{"s_symb", Value::Type::kString},
                                   db::ColumnDef{"s_num_out",
                                                 Value::Type::kInt}})
                    .ok());
    for (int wl = 0; wl < 5; ++wl) {
      for (int i = 0; i < 8; ++i) {
        std::string sym = "S" + std::to_string(wl) + "_" + std::to_string(i);
        ASSERT_TRUE(db_.ExecuteText("INSERT INTO watch_item VALUES (" +
                                    std::to_string(wl) + ", '" + sym + "')")
                        .ok());
        ASSERT_TRUE(db_.ExecuteText("INSERT INTO security VALUES ('" + sym +
                                    "', " + std::to_string(100 + i) + ")")
                        .ok());
      }
    }
  }

  std::unique_ptr<Middleware> MakeMiddleware(SystemMode mode) {
    MiddlewareConfig config;
    config.mode = mode;
    config.Finalize();
    return std::make_unique<Middleware>(&events_, &remote_, latency_, config);
  }

  /// Synchronous helper: submit and run the event loop to completion.
  ResultSet Query(Middleware* mw, ClientId client, const std::string& sql,
                  int group = 0) {
    ResultSet out;
    bool done = false;
    mw->SubmitQuery(client, group, sql,
                    [&](SimTime, const Result<ResultSet>& result) {
                      EXPECT_TRUE(result.ok()) << result.status().ToString();
                      if (result.ok()) out = *result;
                      done = true;
                    });
    events_.RunAll();
    EXPECT_TRUE(done);
    return out;
  }

  /// Runs a Market-Watch style transaction; returns queries issued.
  void RunLoopTransaction(Middleware* mw, ClientId client, int wl) {
    ResultSet symbols = Query(
        mw, client,
        "SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = " +
            std::to_string(wl));
    for (size_t i = 0; i < symbols.row_count(); ++i) {
      (void)Query(mw, client,
                  "SELECT s_num_out FROM security WHERE s_symb = '" +
                      symbols.row(i)[0].AsString() + "'");
    }
  }

  EventQueue events_;
  db::Database db_;
  net::LatencyModel latency_;
  RemoteDbServer remote_{&events_, &db_, latency_, 8};
};

TEST_F(MiddlewareTest, ReadReturnsCorrectResult) {
  auto mw = MakeMiddleware(SystemMode::kLru);
  ResultSet rs = Query(mw.get(), 0,
                       "SELECT s_num_out FROM security WHERE s_symb = 'S0_3'");
  ASSERT_EQ(rs.row_count(), 1u);
  EXPECT_EQ(rs.row(0)[0], Value::Int(103));
}

TEST_F(MiddlewareTest, RepeatQueryHitsCache) {
  auto mw = MakeMiddleware(SystemMode::kLru);
  (void)Query(mw.get(), 0, "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'");
  uint64_t remote_before = remote_.requests();
  ResultSet rs = Query(mw.get(), 0,
                       "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'");
  EXPECT_EQ(remote_.requests(), remote_before);  // served from the edge
  EXPECT_EQ(mw->metrics().cache_hits, 1u);
  EXPECT_EQ(rs.row(0)[0], Value::Int(100));
}

TEST_F(MiddlewareTest, DifferentFormattingSameCacheEntry) {
  auto mw = MakeMiddleware(SystemMode::kLru);
  (void)Query(mw.get(), 0, "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'");
  (void)Query(mw.get(), 0,
              "select  s_num_out  from security where s_symb='S0_0'");
  EXPECT_EQ(mw->metrics().cache_hits, 1u);
}

TEST_F(MiddlewareTest, CacheSharedAcrossClients) {
  auto mw = MakeMiddleware(SystemMode::kLru);
  (void)Query(mw.get(), 0, "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'");
  (void)Query(mw.get(), 1, "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'");
  EXPECT_EQ(mw->metrics().cache_hits, 1u);
}

TEST_F(MiddlewareTest, ScalpelEDoesNotShareAcrossClients) {
  auto mw = MakeMiddleware(SystemMode::kScalpelE);
  (void)Query(mw.get(), 0, "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'");
  (void)Query(mw.get(), 1, "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'");
  EXPECT_EQ(mw->metrics().cache_hits, 0u);
  // But the same client still shares with itself across transactions.
  (void)Query(mw.get(), 1, "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'");
  EXPECT_EQ(mw->metrics().cache_hits, 1u);
}

TEST_F(MiddlewareTest, SecurityGroupsIsolateResults) {
  auto mw = MakeMiddleware(SystemMode::kLru);
  (void)Query(mw.get(), 0, "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'",
              /*group=*/1);
  // A client under a different policy must not consume the entry (Sec.
  // 5.2.1); its own remote read then re-tags the cached result.
  (void)Query(mw.get(), 1, "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'",
              /*group=*/2);
  EXPECT_EQ(mw->metrics().cache_hits, 0u);
  EXPECT_GE(mw->metrics().cache_rejects, 1u);
  // Same group as the latest cached copy shares.
  (void)Query(mw.get(), 2, "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'",
              /*group=*/2);
  EXPECT_EQ(mw->metrics().cache_hits, 1u);
}

TEST_F(MiddlewareTest, WriteInvalidatesViaSessionVersions) {
  auto mw = MakeMiddleware(SystemMode::kLru);
  (void)Query(mw.get(), 0, "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'");
  // The same client updates the relation; its session must advance.
  (void)Query(mw.get(), 0,
              "UPDATE security SET s_num_out = 999 WHERE s_symb = 'S0_0'");
  ResultSet rs = Query(mw.get(), 0,
                       "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'");
  EXPECT_EQ(rs.row(0)[0], Value::Int(999));  // not the stale cached 100
  EXPECT_EQ(mw->metrics().cache_hits, 0u);
  EXPECT_GE(mw->metrics().cache_rejects, 1u);
}

TEST_F(MiddlewareTest, OtherClientsMayStillReadOlderSnapshot) {
  auto mw = MakeMiddleware(SystemMode::kLru);
  (void)Query(mw.get(), 0, "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'");
  (void)Query(mw.get(), 1,
              "UPDATE security SET s_num_out = 999 WHERE s_symb = 'S0_0'");
  // Client 2 never observed the newer state: session semantics allow the
  // older consistent snapshot (§5.2).
  ResultSet rs = Query(mw.get(), 2,
                       "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'");
  EXPECT_EQ(rs.row(0)[0], Value::Int(100));
  EXPECT_EQ(mw->metrics().cache_hits, 1u);
}

TEST_F(MiddlewareTest, ConcurrentIdenticalQueriesCoalesce) {
  auto mw = MakeMiddleware(SystemMode::kLru);
  int completions = 0;
  for (int c = 0; c < 3; ++c) {
    mw->SubmitQuery(c, 0,
                    "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'",
                    [&](SimTime, const Result<ResultSet>& result) {
                      EXPECT_TRUE(result.ok());
                      EXPECT_EQ(result->row(0)[0], Value::Int(100));
                      ++completions;
                    });
  }
  events_.RunAll();
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(mw->metrics().inflight_joins, 2u);
  EXPECT_EQ(remote_.requests(), 1u);  // §5.1: submitted once
}

TEST_F(MiddlewareTest, ChronoLearnsLoopAndPrefetches) {
  auto mw = MakeMiddleware(SystemMode::kChrono);
  // Teach the pattern.
  RunLoopTransaction(mw.get(), 0, 0);
  RunLoopTransaction(mw.get(), 0, 1);
  uint64_t hits_before = mw->metrics().cache_hits;
  // Fresh watch list: the combined query must prefetch the whole loop.
  RunLoopTransaction(mw.get(), 0, 2);
  EXPECT_GT(mw->metrics().remote_combined, 0u);
  // All 8 security lookups of watch list 2 come from the cache.
  EXPECT_GE(mw->metrics().cache_hits - hits_before, 8u);
}

TEST_F(MiddlewareTest, PrefetchedResultsMatchDirectExecution) {
  auto mw = MakeMiddleware(SystemMode::kChrono);
  RunLoopTransaction(mw.get(), 0, 0);
  RunLoopTransaction(mw.get(), 0, 1);
  // Loop over a fresh list; every response must equal direct DB output.
  ResultSet symbols = Query(
      mw.get(), 0, "SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 3");
  for (size_t i = 0; i < symbols.row_count(); ++i) {
    std::string q = "SELECT s_num_out FROM security WHERE s_symb = '" +
                    symbols.row(i)[0].AsString() + "'";
    ResultSet via_mw = Query(mw.get(), 0, q);
    auto direct = db_.ExecuteText(q);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(via_mw, direct->result) << q;
  }
}

TEST_F(MiddlewareTest, RedundancyCheckSuppressesRefiring) {
  auto mw = MakeMiddleware(SystemMode::kChrono);
  RunLoopTransaction(mw.get(), 0, 0);
  RunLoopTransaction(mw.get(), 0, 1);
  RunLoopTransaction(mw.get(), 0, 2);
  uint64_t combined_before = mw->metrics().remote_combined;
  // Re-running list 2 immediately: everything already cached (§5.1).
  RunLoopTransaction(mw.get(), 0, 2);
  EXPECT_GE(mw->metrics().redundant_skips, 1u);
  EXPECT_EQ(mw->metrics().remote_combined, combined_before);
}

TEST_F(MiddlewareTest, ApolloPrefetchesSequentially) {
  auto mw = MakeMiddleware(SystemMode::kApollo);
  RunLoopTransaction(mw.get(), 0, 0);
  RunLoopTransaction(mw.get(), 0, 1);
  RunLoopTransaction(mw.get(), 0, 2);
  EXPECT_EQ(mw->metrics().remote_combined, 0u);  // never combines
  EXPECT_GT(mw->metrics().sequential_prefetches, 0u);
}

TEST_F(MiddlewareTest, LruModeNeverPredicts) {
  auto mw = MakeMiddleware(SystemMode::kLru);
  RunLoopTransaction(mw.get(), 0, 0);
  RunLoopTransaction(mw.get(), 0, 1);
  RunLoopTransaction(mw.get(), 0, 2);
  EXPECT_EQ(mw->metrics().remote_combined, 0u);
  EXPECT_EQ(mw->metrics().sequential_prefetches, 0u);
  EXPECT_EQ(mw->TotalGraphs(), 0u);
}

TEST_F(MiddlewareTest, ParseErrorSurfacesToClient) {
  auto mw = MakeMiddleware(SystemMode::kChrono);
  bool got_error = false;
  mw->SubmitQuery(0, 0, "THIS IS NOT SQL",
                  [&](SimTime, const Result<ResultSet>& result) {
                    got_error = !result.ok();
                  });
  events_.RunAll();
  EXPECT_TRUE(got_error);
}

TEST_F(MiddlewareTest, WriteReturnsWithoutCaching) {
  auto mw = MakeMiddleware(SystemMode::kChrono);
  (void)Query(mw.get(), 0,
              "UPDATE security SET s_num_out = 5 WHERE s_symb = 'S0_1'");
  EXPECT_EQ(mw->metrics().writes, 1u);
  EXPECT_EQ(mw->cache().entry_count(), 0u);
}

TEST_F(MiddlewareTest, MultiNodeKeysIsolateCaches) {
  MiddlewareConfig config;
  config.mode = SystemMode::kChrono;
  config.multi_node = true;
  config.node_id = 0;
  config.Finalize();
  Middleware node0(&events_, &remote_, latency_, config);
  config.node_id = 1;
  Middleware node1(&events_, &remote_, latency_, config);

  (void)Query(&node0, 0, "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'");
  (void)Query(&node1, 1, "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'");
  // Separate caches: node1's read was a miss despite node0's entry.
  EXPECT_EQ(node1.metrics().cache_hits, 0u);
}

TEST_F(MiddlewareTest, TemplateCacheMemoizesAnalyzeQuery) {
  auto mw = MakeMiddleware(SystemMode::kLru);
  const std::string q = "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'";
  (void)Query(mw.get(), 0, q);
  EXPECT_EQ(mw->template_cache_counters().misses, 1u);
  EXPECT_EQ(mw->template_cache_counters().hits, 0u);

  // Same text again: AnalyzeQuery is skipped even though the read itself
  // is answered from the edge cache.
  (void)Query(mw.get(), 0, q);
  EXPECT_EQ(mw->template_cache_counters().misses, 1u);
  EXPECT_EQ(mw->template_cache_counters().hits, 1u);

  // A different binding of the same template is a different text.
  (void)Query(mw.get(), 0,
              "SELECT s_num_out FROM security WHERE s_symb = 'S0_1'");
  EXPECT_EQ(mw->template_cache_counters().misses, 2u);
  EXPECT_EQ(mw->template_cache_counters().hits, 1u);
}

TEST_F(MiddlewareTest, CombinedPredictionsUseAstHandoff) {
  auto mw = MakeMiddleware(SystemMode::kChrono);
  // Train the model on the Market-Watch loop, then trigger a predictive
  // combined query: it must reach the server as a pre-built AST.
  for (int round = 0; round < 6; ++round) {
    RunLoopTransaction(mw.get(), 0, round % 2);
  }
  ASSERT_GT(mw->metrics().remote_combined, 0u);
  EXPECT_GT(remote_.ast_handoffs(), 0u);
}

TEST_F(MiddlewareTest, ResponseLatencyIncludesWanOnMiss) {
  auto mw = MakeMiddleware(SystemMode::kLru);
  SimTime start = events_.now();
  SimTime end = 0;
  mw->SubmitQuery(0, 0, "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'",
                  [&](SimTime now, const Result<ResultSet>&) { end = now; });
  events_.RunAll();
  EXPECT_GE(end - start, latency_.wan_rtt);
}

TEST_F(MiddlewareTest, HitLatencyAvoidsWan) {
  auto mw = MakeMiddleware(SystemMode::kLru);
  (void)Query(mw.get(), 0, "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'");
  SimTime start = events_.now();
  SimTime end = 0;
  mw->SubmitQuery(0, 0, "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'",
                  [&](SimTime now, const Result<ResultSet>&) { end = now; });
  events_.RunAll();
  EXPECT_LT(end - start, latency_.wan_rtt / 2);
}

// The sim middleware exports the same metric shapes as the wall-clock
// server (DESIGN.md §9): counters mirror MiddlewareMetrics through
// pull-mode callbacks, and destruction unregisters them so a later
// snapshot never dereferences the dead middleware.
TEST_F(MiddlewareTest, RegisterMetricsMirrorsCountersIntoRegistry) {
  obs::MetricsRegistry registry;
  {
    auto mw = MakeMiddleware(SystemMode::kLru);
    mw->RegisterMetrics(&registry);
    (void)Query(mw.get(), 0,
                "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'");
    (void)Query(mw.get(), 0,
                "SELECT s_num_out FROM security WHERE s_symb = 'S0_0'");

    obs::RegistrySnapshot snap = registry.Snapshot();
    const obs::MetricSnapshot* reads =
        snap.Find("chrono_requests_total", {{"op", "read"}});
    ASSERT_NE(reads, nullptr);
    EXPECT_DOUBLE_EQ(reads->value, static_cast<double>(mw->metrics().reads));
    EXPECT_DOUBLE_EQ(reads->value, 2.0);
    const obs::MetricSnapshot* hits =
        snap.Find("chrono_cache_hits_total", {{"cache", "result"}});
    ASSERT_NE(hits, nullptr);
    EXPECT_GE(hits->value, 1.0);  // the repeat query was an edge hit
    ASSERT_NE(snap.Find("chrono_cache_entries", {{"cache", "template"}}),
              nullptr);
    ASSERT_NE(snap.Find("chrono_result_cache_bytes"), nullptr);
  }
  // Middleware destroyed: callbacks must be unregistered, not dangling.
  obs::RegistrySnapshot after = registry.Snapshot();
  const obs::MetricSnapshot* reads =
      after.Find("chrono_requests_total", {{"op", "read"}});
  ASSERT_NE(reads, nullptr);
  EXPECT_DOUBLE_EQ(reads->value, 0.0);
}

}  // namespace
}  // namespace chrono::core
