// Statement cache (parse memoization in db::Database): repeated query text
// must skip the parser, cached plans must stay correct across DML (parse
// trees are immutable and table-independent, so there is no invalidation),
// and the cache must honour its entry bound by evicting LRU entries.

#include <gtest/gtest.h>

#include <string>

#include "db/database.h"
#include "sql/value.h"

namespace chrono::db {
namespace {

using sql::Value;

class StatementCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.catalog()
                    ->CreateTable("t", {ColumnDef{"id", Value::Type::kInt},
                                        ColumnDef{"v", Value::Type::kInt}})
                    .ok());
  }

  sql::ResultSet Exec(Database& db, const std::string& sql) {
    auto outcome = db.ExecuteText(sql);
    EXPECT_TRUE(outcome.ok()) << sql << " -> " << outcome.status().ToString();
    return outcome.ok() ? outcome->result : sql::ResultSet();
  }

  Database db_;
};

TEST_F(StatementCacheTest, RepeatedTextHitsCache) {
  const std::string q = "SELECT v FROM t WHERE id = 1";
  Exec(db_, q);
  EXPECT_EQ(db_.statement_cache_counters().misses, 1u);
  EXPECT_EQ(db_.statement_cache_counters().hits, 0u);

  for (int i = 0; i < 5; ++i) Exec(db_, q);
  EXPECT_EQ(db_.statement_cache_counters().misses, 1u);
  EXPECT_EQ(db_.statement_cache_counters().hits, 5u);

  // A different text is a fresh miss.
  Exec(db_, "SELECT v FROM t WHERE id = 2");
  EXPECT_EQ(db_.statement_cache_counters().misses, 2u);
}

TEST_F(StatementCacheTest, ParseCachedReturnsSameTree) {
  const std::string q = "SELECT v FROM t WHERE id = 1";
  auto first = db_.ParseCached(q);
  auto second = db_.ParseCached(q);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());
}

TEST_F(StatementCacheTest, CachedStatementSeesDmlEffects) {
  const std::string q = "SELECT v FROM t WHERE id = 1";
  EXPECT_EQ(Exec(db_, q).rows().size(), 0u);

  Exec(db_, "INSERT INTO t VALUES (1, 10)");
  sql::ResultSet after_insert = Exec(db_, q);
  ASSERT_EQ(after_insert.rows().size(), 1u);
  EXPECT_TRUE(after_insert.At(0, "v").EqualsSql(Value::Int(10)));

  Exec(db_, "UPDATE t SET v = 20 WHERE id = 1");
  sql::ResultSet after_update = Exec(db_, q);
  ASSERT_EQ(after_update.rows().size(), 1u);
  EXPECT_TRUE(after_update.At(0, "v").EqualsSql(Value::Int(20)));

  Exec(db_, "DELETE FROM t WHERE id = 1");
  EXPECT_EQ(Exec(db_, q).rows().size(), 0u);

  // Every SELECT after the first was a cache hit: DML does not invalidate.
  EXPECT_GE(db_.statement_cache_counters().hits, 3u);
}

TEST_F(StatementCacheTest, EvictionKeepsCacheBounded) {
  Database small(4);
  ASSERT_TRUE(small.catalog()
                  ->CreateTable("t", {ColumnDef{"id", Value::Type::kInt}})
                  .ok());
  for (int i = 0; i < 10; ++i) {
    Exec(small, "SELECT id FROM t WHERE id = " + std::to_string(i));
  }
  EXPECT_LE(small.statement_cache_size(), 4u);
  EXPECT_EQ(small.statement_cache_counters().misses, 10u);

  // The most recent text is still resident; the oldest was evicted.
  Exec(small, "SELECT id FROM t WHERE id = 9");
  EXPECT_EQ(small.statement_cache_counters().hits, 1u);
  Exec(small, "SELECT id FROM t WHERE id = 0");
  EXPECT_EQ(small.statement_cache_counters().misses, 11u);
}

TEST_F(StatementCacheTest, ParseErrorsAreNotCached) {
  auto bad = db_.ExecuteText("SELEC nonsense FROM");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(db_.statement_cache_size(), 0u);
  // Each failed attempt re-parses (and re-fails): only successes are stored.
  auto bad2 = db_.ExecuteText("SELEC nonsense FROM");
  EXPECT_FALSE(bad2.ok());
  EXPECT_EQ(db_.statement_cache_counters().hits, 0u);
}

}  // namespace
}  // namespace chrono::db
