// Micro-benchmarks (google-benchmark) for ChronoCache's hot paths:
// parsing + template extraction, query combination, result splitting,
// executor point lookups, and transition-graph updates.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "cache/lru_cache.h"
#include "core/combiner_lateral.h"
#include "core/middleware.h"
#include "db/database.h"
#include "runtime/sharded_cache.h"
#include "sql/parser.h"
#include "sql/result_set.h"
#include "sql/template.h"
#include "sql/value.h"
#include "sql/writer.h"
#include "workloads/tpce.h"

namespace chrono {
namespace {

const char kPointQuery[] =
    "SELECT s_name, s_num_out FROM security WHERE s_symb = 'SYM42'";

void BM_ParseQuery(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = sql::Parse(kPointQuery);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseQuery);

void BM_AnalyzeTemplate(benchmark::State& state) {
  for (auto _ : state) {
    auto parsed = sql::AnalyzeQuery(kPointQuery);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_AnalyzeTemplate);

void BM_WriteStatement(benchmark::State& state) {
  auto stmt = sql::Parse(kPointQuery);
  for (auto _ : state) {
    std::string text = sql::WriteStatement(**stmt);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_WriteStatement);

// Statement-cache hit path: same text, parse memoized in db::Database.
void BM_StatementCacheHit(benchmark::State& state) {
  db::Database database;
  (void)database.ParseCached(kPointQuery);  // warm
  for (auto _ : state) {
    auto stmt = database.ParseCached(kPointQuery);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_StatementCacheHit);

// Template-cache hit path: AnalyzeQuery memoized in the middleware's
// LruMap (lookup cost only — compare against BM_AnalyzeTemplate).
void BM_TemplateCacheHit(benchmark::State& state) {
  cache::LruMap<std::string, sql::ParsedQuery> cache(512);
  auto parsed = sql::AnalyzeQuery(kPointQuery);
  cache.Put(kPointQuery, std::move(*parsed));
  std::string key = kPointQuery;
  for (auto _ : state) {
    const sql::ParsedQuery* hit = cache.Get(key);
    benchmark::DoNotOptimize(hit);
    sql::ParsedQuery copy = *hit;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_TemplateCacheHit);

void BM_ExecutorPointLookup(benchmark::State& state) {
  db::Database database;
  workloads::TpceWorkload workload;
  workload.Populate(&database);
  for (auto _ : state) {
    auto outcome = database.ExecuteText(kPointQuery);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ExecutorPointLookup);

const char kCombinedText[] =
    "WITH q1 AS (SELECT wi_s_symb AS c0, watch_item.__rowid AS ck0 FROM "
    "watch_item WHERE wi_wl_id = 7), q2 AS (SELECT s_num_out AS c1, "
    "s_symb AS jc0, security.__rowid AS ck1 FROM security) SELECT q1.c0, "
    "q1.ck0, q2.c1, q2.ck1 FROM q1 LEFT JOIN q2 ON q2.jc0 = q1.c0";

void BM_ExecutorCombinedCteJoin(benchmark::State& state) {
  db::Database database;
  workloads::TpceWorkload workload;
  workload.Populate(&database);
  for (auto _ : state) {
    auto outcome = database.ExecuteText(kCombinedText);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ExecutorCombinedCteJoin);

void BM_ExecutorGroupBy(benchmark::State& state) {
  db::Database database;
  workloads::TpceWorkload workload;
  workload.Populate(&database);
  const char kGroupBy[] =
      "SELECT s_ex_id, count(*), sum(s_num_out) FROM security "
      "GROUP BY s_ex_id";
  for (auto _ : state) {
    auto outcome = database.ExecuteText(kGroupBy);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ExecutorGroupBy);

// Combined-query execution via the text round-trip (parse every time)
// versus the zero-reparse AST handoff the middleware actually uses.
void BM_CombinedTextRoundTrip(benchmark::State& state) {
  db::Database database;
  workloads::TpceWorkload workload;
  workload.Populate(&database);
  for (auto _ : state) {
    auto parsed = sql::Parse(kCombinedText);
    auto outcome = database.Execute(**parsed);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_CombinedTextRoundTrip);

void BM_CombinedAstHandoff(benchmark::State& state) {
  db::Database database;
  workloads::TpceWorkload workload;
  workload.Populate(&database);
  auto parsed = sql::Parse(kCombinedText);
  for (auto _ : state) {
    auto outcome = database.Execute(**parsed);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_CombinedAstHandoff);

// ---- Zero-copy cache hit path (DESIGN.md §12) ---------------------------
//
// BM_ShardedCacheGetCopy is the pre-refactor hit cost: every Get deep-
// copied the rows out of the entry, so hits scaled with payload size.
// BM_ShardedCacheGetShared is the shipped path: a hit hands back the
// shared immutable payload, a ref-count bump regardless of row count.
// CI's bench job fails if the shared path regresses to within 2x of the
// copying baseline at the widest payload.

cache::CachedResult MakeWideEntry(int64_t rows) {
  cache::CachedResult entry;
  sql::ResultSet rs({"id", "payload"});
  for (int64_t i = 0; i < rows; ++i) {
    rs.AddRow({sql::Value::Int(i),
               sql::Value::String("row-payload-" + std::to_string(i))});
  }
  entry.SetResult(std::move(rs));
  entry.version = {{0, 1}};
  return entry;
}

void BM_ShardedCacheGetCopy(benchmark::State& state) {
  runtime::ShardedCache cache(64 << 20, 8);
  cache.Put("k", MakeWideEntry(state.range(0)));
  for (auto _ : state) {
    auto hit = cache.Get("k");
    sql::ResultSet copy = *hit->result;  // the old per-hit materialization
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardedCacheGetCopy)->Arg(1)->Arg(64)->Arg(1024);

void BM_ShardedCacheGetShared(benchmark::State& state) {
  runtime::ShardedCache cache(64 << 20, 8);
  cache.Put("k", MakeWideEntry(state.range(0)));
  for (auto _ : state) {
    auto hit = cache.Get("k");
    std::shared_ptr<const sql::ResultSet> payload = hit->result;
    benchmark::DoNotOptimize(payload);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardedCacheGetShared)->Arg(1)->Arg(64)->Arg(1024);

void BM_TransitionGraphObserve(benchmark::State& state) {
  core::TransitionGraph graph(200 * kMicrosPerMilli);
  SimTime t = 0;
  uint64_t tmpl = 0;
  for (auto _ : state) {
    graph.Observe(tmpl % 16, t);
    t += 1000;
    ++tmpl;
  }
}
BENCHMARK(BM_TransitionGraphObserve);

void BM_CombineCteGraph(benchmark::State& state) {
  core::TemplateRegistry registry;
  auto q1 = sql::AnalyzeQuery(
      "SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = 7");
  auto q2 = sql::AnalyzeQuery(
      "SELECT s_num_out FROM security WHERE s_symb = 'SYM1'");
  registry.Register(q1->tmpl);
  registry.Register(q2->tmpl);

  core::DependencyGraph graph;
  graph.nodes = {q1->tmpl->id, q2->tmpl->id};
  std::sort(graph.nodes.begin(), graph.nodes.end());
  graph.param_counts[q1->tmpl->id] = 1;
  graph.param_counts[q2->tmpl->id] = 1;
  graph.edges.push_back(
      {q1->tmpl->id, q2->tmpl->id, {{"wi_s_symb", 0}}});

  std::map<core::TemplateId, std::vector<sql::Value>> latest;
  latest[q1->tmpl->id] = q1->params;
  latest[q2->tmpl->id] = q2->params;
  core::CombineInput input{&graph, &registry, &latest};

  for (auto _ : state) {
    auto combined = core::CombineGraph(input);
    benchmark::DoNotOptimize(combined);
  }
}
BENCHMARK(BM_CombineCteGraph);

}  // namespace
}  // namespace chrono

BENCHMARK_MAIN();
