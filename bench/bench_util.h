#ifndef CHRONOCACHE_BENCH_BENCH_UTIL_H_
#define CHRONOCACHE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "workloads/auctionmark.h"
#include "workloads/seats.h"
#include "workloads/tpce.h"
#include "workloads/wikipedia.h"

namespace chrono::bench {

inline const std::vector<core::SystemMode>& AllSystems() {
  static const std::vector<core::SystemMode> kSystems = {
      core::SystemMode::kChrono, core::SystemMode::kScalpelCC,
      core::SystemMode::kScalpelE, core::SystemMode::kApollo,
      core::SystemMode::kLru};
  return kSystems;
}

/// Standard benchmark-scale workload factories (bigger than unit-test
/// scale, smaller than the paper's multi-GB databases; see DESIGN.md §1).
inline std::unique_ptr<workloads::Workload> MakeTpce() {
  return std::make_unique<workloads::TpceWorkload>();
}
inline std::unique_ptr<workloads::Workload> MakeWikipedia() {
  return std::make_unique<workloads::WikipediaWorkload>();
}
inline std::unique_ptr<workloads::Workload> MakeSeats() {
  return std::make_unique<workloads::SeatsWorkload>();
}
inline std::unique_ptr<workloads::Workload> MakeAuctionMark() {
  return std::make_unique<workloads::AuctionMarkWorkload>();
}

/// Default experiment shape shared by the figure benches: 20 s virtual
/// warm-up + 60 s measurement (a compressed version of the paper's
/// 20-minute warm-up + five 5-minute runs), repeated over seeds with 95%
/// confidence intervals.
inline harness::ExperimentConfig FigureConfig(core::SystemMode mode,
                                              int clients) {
  harness::ExperimentConfig config;
  config.clients = clients;
  config.middleware.mode = mode;
  config.warmup = 20 * kMicrosPerSecond;
  config.duration = 60 * kMicrosPerSecond;
  return config;
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void PrintRow(const char* system, int clients,
                     const harness::RepeatedResult& result) {
  std::printf(
      "%-12s clients=%-4d avg_resp=%7.2f ms (±%5.2f)  hit_rate=%5.1f%%  "
      "db_requests=%8.0f  combined=%llu  errors=%llu\n",
      system, clients, result.response_ms.Mean(),
      result.response_ms.ConfidenceInterval95(),
      result.hit_rate.Mean() * 100.0, result.db_requests.Mean(),
      static_cast<unsigned long long>(result.last.metrics.remote_combined),
      static_cast<unsigned long long>(result.last.errors));
}

}  // namespace chrono::bench

#endif  // CHRONOCACHE_BENCH_BENCH_UTIL_H_
