// Sensitivity analysis (§6.7): the temporal-correlation threshold tau on
// TPC-E with 10 clients.
//
// Paper shape: only extreme values (tau <= 0.01, tau >= 0.95) move the
// response time significantly; everything between performs alike.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace chrono;
  int runs = argc > 1 ? std::atoi(argv[1]) : 3;

  bench::PrintHeader("Sensitivity (Sec 6.7): tau threshold, TPC-E 10 clients");
  for (double tau : {0.01, 0.1, 0.3, 0.5, 0.8, 0.9, 0.95, 0.99}) {
    auto config = bench::FigureConfig(core::SystemMode::kChrono, 10);
    config.middleware.tau = tau;
    auto result = harness::RunRepeated(bench::MakeTpce, config, runs);
    std::printf("tau=%-5.2f ", tau);
    bench::PrintRow("ChronoCache", 10, result);
  }
  return 0;
}
