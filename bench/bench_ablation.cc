// Ablation study over ChronoCache's design choices (DESIGN.md §3): loop
// detection, per-loop-constant support, query combination, dependency-
// graph subsumption, and the §5.1 redundancy check — each disabled in
// isolation on TPC-E.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace chrono;
  int runs = argc > 1 ? std::atoi(argv[1]) : 3;

  struct Variant {
    const char* name;
    void (*tweak)(core::MiddlewareConfig*);
  };
  const Variant kVariants[] = {
      {"full", [](core::MiddlewareConfig*) {}},
      {"-loops", [](core::MiddlewareConfig* c) { c->enable_loops = false; }},
      {"-loopconst",
       [](core::MiddlewareConfig* c) { c->enable_loop_constants = false; }},
      {"-combining",
       [](core::MiddlewareConfig* c) { c->enable_combining = false; }},
      {"-subsumption",
       [](core::MiddlewareConfig* c) { c->enable_subsumption = false; }},
      {"-redundancy",
       [](core::MiddlewareConfig* c) { c->enable_redundancy_check = false; }},
  };

  bench::PrintHeader("Ablation: ChronoCache design choices, TPC-E 10 clients");
  for (const auto& variant : kVariants) {
    auto config = bench::FigureConfig(core::SystemMode::kChrono, 10);
    variant.tweak(&config.middleware);
    auto result = harness::RunRepeated(bench::MakeTpce, config, runs);
    std::printf("%-13s ", variant.name);
    bench::PrintRow("ChronoCache", 10, result);
  }
  return 0;
}
