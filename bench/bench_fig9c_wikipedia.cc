// Figure 9c: Wikipedia workload response times. Zipf(rho=1) page accesses,
// 92% GetPageAnonymous.
//
// Paper shape: ChronoCache and Scalpel-CC are close together (~50% hit
// rate) and clearly ahead of Scalpel-E (~35%), LRU (~30%) and Apollo; the
// workload's key patterns are exploitable by the Scalpel strategies too,
// showing ChronoCache's advanced modelling has scant overhead here.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace chrono;
  int runs = argc > 1 ? std::atoi(argv[1]) : 3;

  bench::PrintHeader("Figure 9c: Wikipedia response time vs clients");
  for (int clients : {5, 10, 20}) {
    for (core::SystemMode mode : bench::AllSystems()) {
      auto config = bench::FigureConfig(mode, clients);
      auto result = harness::RunRepeated(bench::MakeWikipedia, config, runs);
      bench::PrintRow(core::SystemModeName(mode), clients, result);
    }
    std::printf("\n");
  }
  return 0;
}
