// Figure 10b: AuctionMark workload response times over the measurement
// interval. Queries rarely repeat and tables accessed in loops update
// frequently.
//
// Paper shape: ChronoCache ~45% hit rate via CloseAuctions' per-loop
// constant feedback query; Scalpel-CC/E ~10%; Apollo/LRU < 2%.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace chrono;
  int runs = argc > 1 ? std::atoi(argv[1]) : 3;

  bench::PrintHeader("Figure 10b: AuctionMark response time vs clients");
  for (int clients : {5, 10, 20}) {
    for (core::SystemMode mode : bench::AllSystems()) {
      auto config = bench::FigureConfig(mode, clients);
      auto result = harness::RunRepeated(bench::MakeAuctionMark, config, runs);
      bench::PrintRow(core::SystemModeName(mode), clients, result);
    }
    std::printf("\n");
  }
  return 0;
}
