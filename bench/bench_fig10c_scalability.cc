// Figure 10c: ChronoCache scalability — one-node vs three-node deployment
// on TPC-E while scaling clients.
//
// Paper shape: the one-node deployment wins at low client counts (shared
// cache, laxer session rule); the three-node deployment wins at high
// client counts by spreading middleware load — at 180 clients it nearly
// halves the one-node response time.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace chrono;
  int runs = argc > 1 ? std::atoi(argv[1]) : 2;

  bench::PrintHeader("Figure 10c: TPC-E scalability, 1-node vs 3-node");
  for (int clients : {10, 30, 60, 120, 180, 240}) {
    for (int nodes : {1, 3}) {
      auto config = bench::FigureConfig(core::SystemMode::kChrono, clients);
      config.nodes = nodes;
      auto result = harness::RunRepeated(bench::MakeTpce, config, runs);
      std::printf("nodes=%d ", nodes);
      bench::PrintRow("ChronoCache", clients, result);
    }
    std::printf("\n");
  }
  return 0;
}
