// Sensitivity analysis (§6.7): cache size on TPC-E with 10 clients.
//
// Paper shape: performance is insensitive to cache size unless the cache
// is made extremely small (<10 MB of the paper's 3 GB); ChronoCache loads
// results just before they are needed, so a small cache suffices.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace chrono;
  int runs = argc > 1 ? std::atoi(argv[1]) : 3;

  bench::PrintHeader("Sensitivity (Sec 6.7): cache size, TPC-E 10 clients");
  for (size_t kb : {16, 64, 256, 1024, 4096, 65536}) {
    auto config = bench::FigureConfig(core::SystemMode::kChrono, 10);
    config.middleware.cache_bytes = kb * 1024;
    auto result = harness::RunRepeated(bench::MakeTpce, config, runs);
    std::printf("cache=%-6zuKB ", kb);
    bench::PrintRow("ChronoCache", 10, result);
  }
  return 0;
}
