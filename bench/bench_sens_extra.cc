// Extended sensitivity analysis (beyond §6.7): the Δt temporal-correlation
// window and the mapping-validation threshold, TPC-E with 10 clients.
//
// Expected: Δt only hurts at extremes (too small to see loop successors;
// huge windows add spurious edges but τ filters them), and the validation
// threshold trades a slightly slower warm-up for spurious-mapping safety.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace chrono;
  int runs = argc > 1 ? std::atoi(argv[1]) : 3;

  bench::PrintHeader(
      "Extended sensitivity: delta_t window, TPC-E 10 clients");
  for (int64_t ms : {5, 20, 50, 200, 1000, 5000}) {
    auto config = bench::FigureConfig(core::SystemMode::kChrono, 10);
    config.middleware.delta_t = ms * kMicrosPerMilli;
    auto result = harness::RunRepeated(bench::MakeTpce, config, runs);
    std::printf("delta_t=%-6lldms ", static_cast<long long>(ms));
    bench::PrintRow("ChronoCache", 10, result);
  }

  bench::PrintHeader(
      "Extended sensitivity: mapping validation threshold, TPC-E 10 clients");
  for (int v : {1, 2, 4, 8}) {
    auto config = bench::FigureConfig(core::SystemMode::kChrono, 10);
    config.middleware.min_validations = v;
    auto result = harness::RunRepeated(bench::MakeTpce, config, runs);
    std::printf("min_valid=%-4d ", v);
    bench::PrintRow("ChronoCache", 10, result);
  }
  return 0;
}
