// Figure 9a: TPC-E average query response time (US-East edge, US-West
// database, 70 ms WAN RTT) while scaling the number of clients, for
// ChronoCache, Scalpel-CC, Scalpel-E, Apollo and LRU.
//
// Paper shape to reproduce: ChronoCache cuts average response time to
// about 1/3 of LRU/Apollo and about 1/2 of Scalpel-CC/E; cache hit rates
// around 75 / 50 / 45 / 20 / 20 %.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace chrono;
  int runs = argc > 1 ? std::atoi(argv[1]) : 3;

  bench::PrintHeader("Figure 9a: TPC-E response time vs clients (WAN 70ms)");
  for (int clients : {1, 2, 5, 10, 20, 40}) {
    for (core::SystemMode mode : bench::AllSystems()) {
      auto config = bench::FigureConfig(mode, clients);
      auto result = harness::RunRepeated(bench::MakeTpce, config, runs);
      bench::PrintRow(core::SystemModeName(mode), clients, result);
    }
    std::printf("\n");
  }
  return 0;
}
