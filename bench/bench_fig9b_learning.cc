// Figure 9b: learning over time on TPC-E. Average query response time per
// time bucket from a cold start, per system.
//
// Paper shape: ChronoCache converges within ~150 s to ~25 ms and stays
// there; Scalpel variants converge to a higher plateau; Apollo/LRU improve
// only slowly through shared-cache effects.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace chrono;
  (void)argc;
  (void)argv;

  bench::PrintHeader("Figure 9b: TPC-E learning over time (10 clients)");
  for (core::SystemMode mode : bench::AllSystems()) {
    auto config = bench::FigureConfig(mode, 10);
    config.warmup = 0;  // the learning curve IS the result
    config.duration = 180 * kMicrosPerSecond;
    config.timeline_bucket = 15 * kMicrosPerSecond;
    auto result = harness::RunExperiment(bench::MakeTpce, config);
    std::printf("%-12s ", core::SystemModeName(mode));
    for (const auto& [sec, ms] : result.timeline) {
      std::printf("t=%3.0fs:%6.1fms ", sec, ms);
    }
    std::printf(" (errors=%llu)\n",
                static_cast<unsigned long long>(result.errors));
  }
  return 0;
}
