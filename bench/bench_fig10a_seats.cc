// Figure 10a: SEATS workload response times. Conditional customer access
// paths plus the FindFlights loop with a per-loop-constant travel date.
//
// Paper shape: ChronoCache leads (~60% hits) through per-loop-constant
// support; Scalpel-CC (~45%) > Scalpel-E (~40%) > LRU/Apollo (~35%).

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace chrono;
  int runs = argc > 1 ? std::atoi(argv[1]) : 3;

  bench::PrintHeader("Figure 10a: SEATS response time vs clients");
  for (int clients : {5, 10, 20}) {
    for (core::SystemMode mode : bench::AllSystems()) {
      auto config = bench::FigureConfig(mode, clients);
      auto result = harness::RunRepeated(bench::MakeSeats, config, runs);
      bench::PrintRow(core::SystemModeName(mode), clients, result);
    }
    std::printf("\n");
  }
  return 0;
}
